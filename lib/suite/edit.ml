(** Structured program edits — the mutation half of the incremental
    re-analysis engine.

    An edit script is a list of {!op}s applied to a {!Program.t} handle as
    one atomic transaction: instruction surgery on the current AST, a
    single lint run restricted to the touched functions
    ({!Program.commit}), a single epoch bump, and a {!diff} naming
    everything the edit touched. On any failure — unknown target,
    unparsable splice, SSA violation introduced by the edit — the handle
    is left exactly as it was and the failure comes back as structured
    {!Scaf_lint.Diagnostic.t}s, never an exception.

    Inserted instruction text is parsed through a *splice wrapper*: the
    text is wrapped in a one-block function, run through the ordinary
    parser, and the resulting instructions are re-numbered into the host
    module's fresh-id range (ids are module-unique and never reused, so
    analyses and profiles keyed by id stay unambiguous across epochs). *)

open Scaf_ir
open Scaf_cfg
module Diagnostic = Scaf_lint.Diagnostic

type op =
  | Replace_loop_body of { lid : string; block : string; body : string }
      (** replace every instruction of [block] — which must belong to loop
          [lid] — with the instructions parsed from [body]; the terminator
          is preserved *)
  | Insert_instr of { fname : string; block : string; at : int; text : string }
      (** insert the instructions parsed from [text] before position [at]
          (0 = block start, [length] = before the terminator) *)
  | Delete_instr of { id : int }  (** remove the instruction with id [id] *)

(** What an applied edit script touched, at the granularity the
    invalidation pass consumes. Instruction ids cover both deleted
    instructions (attributed against the pre-edit program) and inserted
    ones (attributed against the post-edit program). *)
type diff = {
  epoch : int;  (** the program epoch after the edit *)
  touched_instrs : int list;
  touched_funcs : string list;
  touched_loops : string list;  (** lids whose bodies changed *)
  touched_globals : string list;  (** globals referenced by touched instrs *)
}

let empty_diff epoch =
  {
    epoch;
    touched_instrs = [];
    touched_funcs = [];
    touched_loops = [];
    touched_globals = [];
  }

(* ------------------------------------------------------------------ *)
(* Splice parsing                                                      *)

(** Highest instruction/terminator id in use; fresh ids start above it. *)
let max_id (m : Irmod.t) : int =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          let acc = max acc b.Block.term.Instr.tid in
          List.fold_left
            (fun acc (i : Instr.t) -> max acc i.Instr.id)
            acc b.Block.instrs)
        acc f.Func.blocks)
    (-1) m.Irmod.funcs

(** Parse instruction text via the splice wrapper and re-number the result
    into the host module's id space starting at [next_id]. The text must
    be a straight-line instruction sequence — no labels, no
    terminators. *)
let pass_name = "edit"

(* Target-resolution failures: the op names something that does not
   exist in the current program. *)
let target_err ?func ?block fmt =
  Fmt.kstr
    (fun m ->
      Diagnostic.make ?func ?block ~code:"edit.target" ~pass:pass_name
        Diagnostic.Error m)
    fmt

(* Splice-text failures: the inserted text does not parse as a
   straight-line instruction sequence. *)
let parse_err fmt =
  Fmt.kstr
    (fun m ->
      Diagnostic.make ~code:"edit.parse" ~pass:pass_name Diagnostic.Error m)
    fmt

let parse_splice ~(next_id : int) (text : string) :
    (Instr.t list * int, Diagnostic.t) result =
  let wrapped = Printf.sprintf "func @__splice__() {\nentry:\n%s\n  ret\n}\n" text in
  match Parser.parse wrapped with
  | exception Parser.Parse_error (msg, line) ->
      Error (parse_err "splice parse error (line %d): %s" (line - 2) msg)
  | exception Lexer.Lex_error (msg, line) ->
      Error (parse_err "splice lex error (line %d): %s" (line - 2) msg)
  | m -> (
      match m.Irmod.funcs with
      | [ { Func.blocks = [ { Block.instrs; term; _ } ]; _ } ]
        when term.Instr.tkind = Instr.Ret None ->
          let instrs =
            List.mapi
              (fun k (i : Instr.t) -> { i with Instr.id = next_id + k })
              instrs
          in
          Ok (instrs, next_id + List.length instrs)
      | _ ->
          Error
            (parse_err
               "splice text must be a straight-line instruction sequence \
                (no labels or terminators)"))

(* ------------------------------------------------------------------ *)
(* AST surgery                                                         *)

let replace_func (m : Irmod.t) (f' : Func.t) : Irmod.t =
  {
    m with
    Irmod.funcs =
      List.map
        (fun (f : Func.t) ->
          if String.equal f.Func.name f'.Func.name then f' else f)
        m.Irmod.funcs;
  }

let replace_block (f : Func.t) (b' : Block.t) : Func.t =
  {
    f with
    Func.blocks =
      List.map
        (fun (b : Block.t) ->
          if String.equal b.Block.label b'.Block.label then b' else b)
        f.Func.blocks;
  }

(* One op against the working module. Returns the new module, the owning
   function, the removed instruction ids and the inserted instructions. *)
let apply_op (m : Irmod.t) (ctx : Progctx.t) ~(next_id : int) (op : op) :
    (Irmod.t * string * int list * Instr.t list * int, Diagnostic.t) result =
  match op with
  | Insert_instr { fname; block; at; text } -> (
      match Irmod.find_func m fname with
      | None -> Error (target_err ~func:fname "insert: no function @%s" fname)
      | Some f -> (
          match Func.find_block f block with
          | None ->
              Error
                (target_err ~func:fname "insert: no block %s in @%s" block
                   fname)
          | Some b ->
              let n = List.length b.Block.instrs in
              if at < 0 || at > n then
                Error
                  (target_err ~func:fname ~block
                     "insert: position %d out of range (0..%d)" at n)
              else
                Result.bind (parse_splice ~next_id text)
                  (fun (added, next_id) ->
                    let before = List.filteri (fun i _ -> i < at) b.Block.instrs
                    and after = List.filteri (fun i _ -> i >= at) b.Block.instrs in
                    let b' =
                      { b with Block.instrs = before @ added @ after }
                    in
                    Ok
                      ( replace_func m (replace_block f b'),
                        fname,
                        [],
                        added,
                        next_id ))))
  | Delete_instr { id } -> (
      match Progctx.occ ctx id with
      | None -> Error (target_err "delete: no instruction %d" id)
      | Some o ->
          let f = o.Irmod.Index.func and b = o.Irmod.Index.block in
          let b' =
            {
              b with
              Block.instrs =
                List.filter (fun (i : Instr.t) -> i.Instr.id <> id) b.Block.instrs;
            }
          in
          Ok
            ( replace_func m (replace_block f b'),
              f.Func.name,
              [ id ],
              [],
              next_id ))
  | Replace_loop_body { lid; block; body } -> (
      match Progctx.loop_of_lid ctx lid with
      | None -> Error (target_err "replace: no loop %s" lid)
      | Some (fname, loop) -> (
          match Irmod.find_func m fname with
          | None ->
              Error (target_err ~func:fname "replace: no function @%s" fname)
          | Some f -> (
              match Func.find_block f block with
              | None ->
                  Error
                    (target_err ~func:fname "replace: no block %s in @%s"
                       block fname)
              | Some b ->
                  let in_loop =
                    match Progctx.cfg_of ctx fname with
                    | None -> false
                    | Some cfg ->
                        List.exists
                          (fun bi ->
                            Loops.contains loop bi
                            && String.equal
                                 (Cfg.block cfg bi).Block.label block)
                          (List.init (Cfg.num_blocks cfg) Fun.id)
                  in
                  if not in_loop then
                    Error
                      (target_err ~func:fname ~block
                         "replace: block %s is not part of loop %s" block lid)
                  else
                    Result.bind (parse_splice ~next_id body)
                      (fun (added, next_id) ->
                        let removed =
                          List.map (fun (i : Instr.t) -> i.Instr.id) b.Block.instrs
                        in
                        let b' = { b with Block.instrs = added } in
                        Ok
                          ( replace_func m (replace_block f b'),
                            fname,
                            removed,
                            added,
                            next_id )))))

(* ------------------------------------------------------------------ *)
(* Diff attribution                                                    *)

let globals_of_instrs (instrs : Instr.t list) : string list =
  List.concat_map
    (fun (i : Instr.t) ->
      List.filter_map
        (function Value.Global g -> Some g | _ -> None)
        (Instr.operands i))
    instrs

(** Loops of [fname] (in [ctx]) containing any of [ids]. *)
let lids_of_ids (ctx : Progctx.t) (fname : string) (ids : int list) :
    string list =
  match Progctx.loops_of ctx fname with
  | None -> []
  | Some li ->
      List.filter_map
        (fun (l : Loops.loop) ->
          if List.exists (fun id -> Loops.contains_instr li l id) ids then
            Some l.Loops.lid
          else None)
        li.Loops.loops

let instr_of_id (ctx : Progctx.t) (id : int) : Instr.t list =
  match Progctx.occ ctx id with
  | Some o -> [ o.Irmod.Index.instr ]
  | None -> []

(* ------------------------------------------------------------------ *)
(* The transaction                                                     *)

(** [apply_all p ops] — apply the whole script as one transaction: one
    lint run over the touched functions, one epoch bump, one merged
    diff. On [Error] the handle is untouched (including its epoch) and
    the diagnostics say why. *)
let apply_all (p : Program.t) (ops : op list) :
    (diff, Diagnostic.t list) result =
  let rec go m ctx next_id acc = function
    | [] -> Ok (m, List.rev acc)
    | op :: rest -> (
        match apply_op m ctx ~next_id op with
        | Error d -> Error [ d ]
        | Ok (m', fname, removed, added, next_id) ->
            let ctx' = Progctx.build m' in
            (* attribute deletions against the pre-op program, insertions
               against the post-op one *)
            let removed_instrs =
              List.concat_map (fun id -> instr_of_id ctx id) removed
            in
            let touched =
              ( fname,
                removed @ List.map (fun (i : Instr.t) -> i.Instr.id) added,
                lids_of_ids ctx fname removed
                @ lids_of_ids ctx' fname
                    (List.map (fun (i : Instr.t) -> i.Instr.id) added),
                globals_of_instrs (removed_instrs @ added) )
            in
            go m' ctx' next_id (touched :: acc) rest)
  in
  match go (Program.program p) (Program.ctx p) (max_id (Program.program p) + 1) [] ops with
  | Error e -> Error e
  | Ok (m', touches) -> (
      let uniq l = List.sort_uniq compare l in
      let touched = uniq (List.map (fun (f, _, _, _) -> f) touches) in
      match Program.commit ~touched p m' with
      | Error diags -> Error diags
      | Ok epoch ->
          Ok
            {
              epoch;
              touched_instrs = uniq (List.concat_map (fun (_, is, _, _) -> is) touches);
              touched_funcs = touched;
              touched_loops = uniq (List.concat_map (fun (_, _, ls, _) -> ls) touches);
              touched_globals =
                uniq (List.concat_map (fun (_, _, _, gs) -> gs) touches);
            })

(** [apply p op] — a one-op script. *)
let apply (p : Program.t) (op : op) : (diff, Diagnostic.t list) result =
  apply_all p [ op ]

let pp_op ppf = function
  | Replace_loop_body { lid; block; _ } ->
      Fmt.pf ppf "replace_loop_body(%s, %s)" lid block
  | Insert_instr { fname; block; at; _ } ->
      Fmt.pf ppf "insert_instr(@%s, %s, %d)" fname block at
  | Delete_instr { id } -> Fmt.pf ppf "delete_instr(%d)" id

let pp_diff ppf (d : diff) =
  Fmt.pf ppf "epoch %d: %d instrs, funcs [%a], loops [%a]" d.epoch
    (List.length d.touched_instrs)
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    d.touched_funcs
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    d.touched_loops
