(** A mutable handle on one suite program — the unit of work of the
    incremental re-analysis engine.

    A handle owns the current state of a benchmark program: its stable
    identity, the verified module, the pretty-printed source, the training
    and reference inputs, and the *program epoch* — a counter bumped by
    every committed edit. Analysis state keyed on (query, epoch) — the
    {!Scaf.Qcache} memo table in particular — survives edits exactly as far
    as the invalidation pass allows; the epoch makes stale entries
    unreachable by construction.

    Handles are deliberately cheap to {!fork}: the registry hands out a
    fresh handle per lookup, and the analysis service forks one per loaded
    benchmark, so edits in one client never bleed into another. *)

open Scaf_ir

type t = {
  id : string;  (** the SPEC benchmark this stands in for (stable) *)
  descr : string;  (** which dependence idioms its hot loops exercise *)
  train_inputs : int64 array list;
  ref_input : int64 array;
  mutable epoch : int;  (** bumped by every committed edit *)
  mutable m : Irmod.t;  (** current program; always fully verified *)
  mutable source : string;  (** pretty-printed text of [m] *)
  mutable ctx_memo : (int * Scaf_cfg.Progctx.t) option;
  mutable profiles_memo : (int * Scaf_profile.Profiles.t) option;
}

(* All rare-path gates read index 0; training input keeps them closed. *)
let default_train = [ [| 0L |] ]
let default_ref = [| 1L |]

(** [make ~id ~descr source] parses and lints [source] at construction —
    the full [Scaf_lint.Pass.default] suite, which subsumes structural
    verification and the dominance-based SSA check — so an ill-formed
    program blows up when the registry is built, not when a client first
    asks for it. Lint *errors* are fatal; warnings are allowed. The
    handle starts at epoch 0 with the lint run's analysis context
    already memoized. *)
let make ~(id : string) ~(descr : string) ?(train_inputs = default_train)
    ?(ref_input = default_ref) (source : string) : t =
  let m = Parser.parse_exn_msg source in
  let report = Scaf_lint.Pass.run m in
  (match Scaf_lint.Pass.errors report with
  | [] -> ()
  | errs ->
      invalid_arg
        (Fmt.str "ill-formed MIR module:@.%a"
           (Fmt.list ~sep:Fmt.cut Scaf_lint.Diagnostic.pp)
           errs));
  {
    id;
    descr;
    train_inputs;
    ref_input;
    epoch = 0;
    m;
    source;
    ctx_memo = Option.map (fun c -> (0, c)) report.Scaf_lint.Pass.ctx;
    profiles_memo = None;
  }

let id (t : t) = t.id
let descr (t : t) = t.descr
let epoch (t : t) = t.epoch
let source (t : t) = t.source
let train_inputs (t : t) = t.train_inputs
let ref_input (t : t) = t.ref_input

(** The current program. Already fully verified — callers need not (and
    should not) re-check it. *)
let program (t : t) : Irmod.t = t.m

(** The analysis context of the current program, built on demand and
    memoized until the next committed edit. *)
let ctx (t : t) : Scaf_cfg.Progctx.t =
  match t.ctx_memo with
  | Some (e, c) when e = t.epoch -> c
  | _ ->
      let c = Scaf_cfg.Progctx.build t.m in
      t.ctx_memo <- Some (t.epoch, c);
      c

(** Profiles of the current program on its training inputs, memoized until
    the next committed edit (so repeated orchestrator rebuilds within one
    epoch profile once). *)
let profiles (t : t) : Scaf_profile.Profiles.t =
  match t.profiles_memo with
  | Some (e, p) when e = t.epoch -> p
  | _ ->
      let p = Scaf_profile.Profiler.profile_module ~inputs:t.train_inputs t.m in
      t.profiles_memo <- Some (t.epoch, p);
      p

(** An independent handle on the same program state: same epoch, same
    module, but subsequent edits to either handle leave the other
    untouched. Memoized analysis artefacts are shared (they are immutable
    once built for an epoch). *)
let fork (t : t) : t =
  {
    id = t.id;
    descr = t.descr;
    train_inputs = t.train_inputs;
    ref_input = t.ref_input;
    epoch = t.epoch;
    m = t.m;
    source = t.source;
    ctx_memo = t.ctx_memo;
    profiles_memo = t.profiles_memo;
  }

(** [commit t m'] — replace the program with [m'] and bump the epoch,
    provided [m'] lints without errors; on failure the handle is left
    exactly as it was (the edit engine's rollback) and the lint errors
    are returned as structured diagnostics. Returns the new epoch.
    [?touched] restricts the function-local lint passes to the named
    functions (the Edit API passes the functions its script touched);
    module-wide checks always run. The lint run's analysis context is
    memoized for the new epoch, so committing never double-builds a
    [Progctx]. This is the only way a handle's program ever changes, so
    the invariant "[program t] is lint-clean and [epoch t] identifies
    it" holds globally. *)
let commit ?touched (t : t) (m' : Irmod.t) :
    (int, Scaf_lint.Diagnostic.t list) result =
  let report = Scaf_lint.Pass.run ?funcs:touched m' in
  match Scaf_lint.Pass.errors report with
  | [] ->
      t.m <- m';
      t.source <- Irmod.to_string m';
      t.epoch <- t.epoch + 1;
      t.ctx_memo <-
        Option.map (fun c -> (t.epoch, c)) report.Scaf_lint.Pass.ctx;
      t.profiles_memo <- None;
      Ok t.epoch
  | errs -> Error errs

(** Lint the current program with the full default pass suite (no
    function restriction). The program is already known error-free; this
    is for surfacing warnings and cost estimates. *)
let lint ?metrics (t : t) : Scaf_lint.Pass.report =
  Scaf_lint.Pass.run ?metrics t.m
