(** A synthetic stand-in for one evaluated SPEC benchmark: an MIR program,
    its training inputs (the paper profiles on SPEC "train" inputs) and a
    reference input that exercises the rare paths (for misspeculation
    tests). *)

type t = {
  name : string;  (** the SPEC benchmark this stands in for *)
  descr : string;  (** which dependence idioms its hot loops exercise *)
  source : string;  (** MIR program text *)
  train_inputs : int64 array list;
  ref_input : int64 array;
}

(** Parse and fully verify the program: structural checks plus the
    dominance-based SSA check. *)
let program (t : t) : Scaf_ir.Irmod.t =
  let m = Scaf_ir.Parser.parse_exn_msg t.source in
  Scaf_cfg.Ssa.check_full_exn m;
  m

(* All rare-path gates read index 0; training input keeps them closed. *)
let train = [ [| 0L |] ]
let ref_in = [| 1L |]

(** [make] runs full verification at construction, so an ill-formed
    benchmark blows up when the registry is built, not when a client first
    asks for its program. *)
let make ~name ~descr pieces : t =
  let t =
    {
      name;
      descr;
      source = Patterns.compose pieces;
      train_inputs = train;
      ref_input = ref_in;
    }
  in
  ignore (program t);
  t
