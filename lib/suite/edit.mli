(** Structured program edits — the mutation half of the incremental
    re-analysis engine.

    An edit script is applied to a {!Program.t} as one atomic transaction:
    AST surgery, a single lint run restricted to the touched functions, a
    single epoch bump and a merged {!diff}. On any failure the handle is
    untouched and the cause comes back as structured
    [Scaf_lint.Diagnostic.t]s (codes [edit.target], [edit.parse], or
    whatever lint pass the edited program now fails). Inserted text
    is parsed through a splice wrapper and re-numbered into the host
    module's fresh-id range — instruction ids are module-unique and never
    reused, so id-keyed analyses and profiles stay unambiguous across
    epochs. *)

type op =
  | Replace_loop_body of { lid : string; block : string; body : string }
      (** replace every instruction of [block] — which must belong to loop
          [lid] — with the instructions parsed from [body]; the terminator
          is preserved *)
  | Insert_instr of { fname : string; block : string; at : int; text : string }
      (** insert the instructions parsed from [text] before position [at]
          (0 = block start, [length] = just before the terminator) *)
  | Delete_instr of { id : int }  (** remove the instruction with id [id] *)

(** What an applied edit script touched, at the granularity the
    invalidation pass consumes. Deleted instructions are attributed
    against the pre-edit program, inserted ones against the post-edit
    program. *)
type diff = {
  epoch : int;  (** the program epoch after the edit *)
  touched_instrs : int list;
  touched_funcs : string list;
  touched_loops : string list;  (** lids whose bodies changed *)
  touched_globals : string list;  (** globals referenced by touched instrs *)
}

val empty_diff : int -> diff

(** [apply_all p ops] — apply the whole script transactionally; on
    [Error] the handle (including its epoch) is untouched and the
    diagnostics say why. *)
val apply_all :
  Program.t -> op list -> (diff, Scaf_lint.Diagnostic.t list) result

(** [apply p op] — a one-op script. *)
val apply : Program.t -> op -> (diff, Scaf_lint.Diagnostic.t list) result

val pp_op : Format.formatter -> op -> unit
val pp_diff : Format.formatter -> diff -> unit
