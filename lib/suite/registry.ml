(** The 16 evaluated benchmarks (§5 "Benchmark Selection"), one synthetic
    stand-in per C/C++ SPEC benchmark the paper evaluates. Each is composed
    of the hot-loop dependence idioms (see {!Patterns}) that characterize
    the original: e.g. the neural-net codes lean on read-only weight
    tables, the mcf codes on pointer-chasing through stable slots, and the
    compression codes saturate under cheap isolated speculation (the
    paper's Figure 9 outliers).

    Registration is declarative — a spec table of (id, descr, pieces) —
    and every lookup materializes a *fresh* {!Program.t} handle, so one
    client's edits never leak into another's program state. *)

open Patterns

type spec = { sid : string; sdescr : string; pieces : piece list }

let specs : spec list =
  [
    {
      sid = "052.alvinn";
      sdescr =
        "neural-net training: two read-only weight-table layers, a rare \
         saturation-reset path, and an affine update sweep";
      pieces =
        [
          ro_table ~name:"fwd" ~iters:120 ~size:512;
          ro_table ~name:"hid" ~iters:120 ~size:512;
          rare_kill ~name:"err" ~iters:120 ~gate:0;
          static_arrays ~name:"upd" ~size:800;
        ];
    };
    {
      sid = "056.ear";
      sdescr =
        "ear model: filterbank with even/odd channel phases and affine \
         sweeps; one small read-only gain table";
      pieces =
        [
          residue_streams ~name:"fb" ~iters:130 ~gate:0;
          static_arrays ~name:"win" ~size:880;
          ro_table ~name:"gain" ~iters:110 ~size:256;
        ];
    };
    {
      sid = "129.compress";
      sdescr =
        "LZW: hash probing with parity-split buckets, an affine copy, and a \
         rare table-clear path";
      pieces =
        [
          residue_streams ~name:"hash" ~iters:140 ~gate:0;
          static_arrays ~name:"copy" ~size:840;
          rare_kill ~name:"clear" ~iters:120 ~gate:0;
        ];
    };
    {
      sid = "164.gzip";
      sdescr =
        "deflate: per-block short-lived window buffer, parity-split hash \
         chains, affine literal copy, and input-indexed history";
      pieces =
        [
          short_lived ~name:"blk" ~iters:110;
          residue_streams ~name:"chain" ~iters:120 ~gate:0;
          static_arrays ~name:"lit" ~size:800;
          indirect_index ~name:"hist" ~iters:110 ~gate:0;
        ];
    };
    {
      sid = "175.vpr";
      sdescr =
        "placement: rare re-routing paths around killing updates, a poisoned \
         net partition, and a read-only timing table";
      pieces =
        [
          rare_kill ~name:"swap" ~iters:120 ~gate:0;
          dead_store_global_malloc ~name:"net" ~iters:110 ~gate:0;
          ro_table ~name:"tmg" ~iters:120 ~size:512;
          static_arrays ~name:"cost" ~size:800;
        ];
    };
    {
      sid = "179.art";
      sdescr =
        "adaptive resonance: read-only weight matrix, affine activation \
         sweep, parity-split f1 layer";
      pieces =
        [
          ro_table ~name:"wgt" ~iters:130 ~size:512;
          static_arrays ~name:"act" ~size:880;
          residue_streams ~name:"f1" ~iters:120 ~gate:0;
        ];
    };
    {
      sid = "181.mcf";
      sdescr =
        "min-cost flow: pointer chasing through a stable arc slot with a rare \
         rebase, a poisoned node partition, input-indexed buckets";
      pieces =
        [
          unique_path_chain ~name:"arc" ~iters:130 ~gate:0;
          dead_store_global_malloc ~name:"node" ~iters:110 ~gate:0;
          indirect_index ~name:"bkt" ~iters:110 ~gate:0;
        ];
    };
    {
      sid = "183.equake";
      sdescr =
        "earthquake FEM: read-only stiffness table, rare boundary fixup \
         around the killing store, affine time-step sweep";
      pieces =
        [
          ro_table ~name:"stif" ~iters:130 ~size:512;
          rare_kill ~name:"bnd" ~iters:120 ~gate:0;
          static_arrays ~name:"step" ~size:840;
        ];
    };
    {
      sid = "429.mcf";
      sdescr =
        "min-cost flow (2006): two chased slots, a poisoned partition, a rare \
         pricing reset, and an affine refresh";
      pieces =
        [
          unique_path_chain ~name:"arc" ~iters:120 ~gate:0;
          dead_store_global_malloc ~name:"basket" ~iters:110 ~gate:0;
          rare_kill ~name:"price" ~iters:110 ~gate:0;
          static_arrays ~name:"rfr" ~size:800;
        ];
    };
    {
      sid = "456.hmmer";
      sdescr =
        "profile HMM: read-only transition table, rare underflow rescue, \
         value-stable termination flag, affine row sweep";
      pieces =
        [
          ro_table ~name:"trans" ~iters:120 ~size:512;
          rare_kill ~name:"resc" ~iters:110 ~gate:0;
          value_kill_output ~name:"term" ~iters:120;
          static_arrays ~name:"row" ~size:800;
        ];
    };
    {
      sid = "462.libquantum";
      sdescr =
        "quantum simulation: read-only gate table, short-lived scratch \
         register file per step, parity-split amplitudes";
      pieces =
        [
          ro_table ~name:"gate" ~iters:130 ~size:512;
          short_lived ~name:"scr" ~iters:120;
          residue_streams ~name:"amp" ~iters:120 ~gate:0;
        ];
    };
    {
      sid = "470.lbm";
      sdescr =
        "lattice Boltzmann: poisoned src/dst grid partitions, read-only \
         collision weights, affine streaming sweep";
      pieces =
        [
          dead_store_global_malloc ~name:"grid" ~iters:120 ~gate:0;
          ro_table ~name:"coll" ~iters:120 ~size:512;
          static_arrays ~name:"strm" ~size:840;
        ];
    };
    {
      sid = "482.sphinx3";
      sdescr =
        "speech recognition: read-only dictionary and senone tables, rare \
         beam-reset around killing updates, input-indexed lattice";
      pieces =
        [
          ro_table ~name:"dict" ~iters:120 ~size:512;
          ro_table ~name:"sen" ~iters:110 ~size:512;
          rare_kill ~name:"beam" ~iters:110 ~gate:0;
          indirect_index ~name:"lat" ~iters:100 ~gate:0;
        ];
    };
    {
      sid = "519.lbm";
      sdescr =
        "lattice Boltzmann (2017): read-only weights, rare boundary handling, \
         affine streaming";
      pieces =
        [
          ro_table ~name:"w" ~iters:130 ~size:512;
          rare_kill ~name:"bc" ~iters:120 ~gate:0;
          static_arrays ~name:"st" ~size:840;
        ];
    };
    {
      sid = "525.x264";
      sdescr =
        "video encoding: value-stable slice flag, read-only quant tables, \
         short-lived per-macroblock scratch, affine SAD sweep";
      pieces =
        [
          value_kill_output ~name:"slice" ~iters:120;
          ro_table ~name:"quant" ~iters:110 ~size:512;
          short_lived ~name:"mb" ~iters:110;
          static_arrays ~name:"sad" ~size:800;
        ];
    };
    {
      sid = "544.nab";
      sdescr =
        "molecular dynamics: read-only force-field parameters, chased \
         neighbour-list slot, parity-split coordinates, affine integration";
      pieces =
        [
          ro_table ~name:"ff" ~iters:120 ~size:512;
          unique_path_chain ~name:"nbr" ~iters:110 ~gate:0;
          residue_streams ~name:"crd" ~iters:110 ~gate:0;
          static_arrays ~name:"intg" ~size:800;
        ];
    };
  ]

let materialize (s : spec) : Program.t =
  Program.make ~id:s.sid ~descr:s.sdescr (Patterns.compose s.pieces)

(** The benchmark ids, in the paper's Figure 8 order. *)
let names : string list = List.map (fun s -> s.sid) specs

(** Fresh handles for all 16 benchmarks, in the paper's Figure 8 order.
    Every call materializes new handles — edits to one batch are invisible
    to the next. *)
let all () : Program.t list = List.map materialize specs

(** A fresh handle for the named benchmark. *)
let find (name : string) : Program.t option =
  Option.map materialize
    (List.find_opt (fun s -> String.equal s.sid name) specs)
