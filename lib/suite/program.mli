(** A mutable handle on one suite program — the unit of work of the
    incremental re-analysis engine.

    A handle owns the current state of a benchmark program: its stable
    identity, the verified module, the pretty-printed source, the training
    and reference inputs, and the *program epoch*, a counter bumped by
    every committed edit. Cache keys carry the epoch
    ({!Scaf.Qcache.key_of}), so entries from superseded program states are
    unreachable by construction; the invalidation pass decides which
    surviving entries to carry forward.

    The handle is abstract: the program only ever changes through
    {!commit} (used by {!Edit.apply}), which re-verifies and bumps the
    epoch atomically — there is no way to hold a handle whose program and
    epoch disagree. *)

type t

(** [make ~id ~descr source] — parse and fully verify [source]; raises on
    ill-formed programs (registration-time failure, not first-use).
    [train_inputs] defaults to the suite's standard training input (rare
    gates closed), [ref_input] to the rare-path-exercising reference
    input. The handle starts at epoch 0. *)
val make :
  id:string ->
  descr:string ->
  ?train_inputs:int64 array list ->
  ?ref_input:int64 array ->
  string ->
  t

(** Stable benchmark identity (e.g. ["181.mcf"]). Never changes. *)
val id : t -> string

(** Which dependence idioms the program's hot loops exercise. *)
val descr : t -> string

(** The current program epoch: 0 at construction, +1 per {!commit}. *)
val epoch : t -> int

(** Pretty-printed text of the current program. *)
val source : t -> string

val train_inputs : t -> int64 array list
val ref_input : t -> int64 array

(** The current program; always fully verified. *)
val program : t -> Scaf_ir.Irmod.t

(** Analysis context of the current program (memoized per epoch). *)
val ctx : t -> Scaf_cfg.Progctx.t

(** Profiles of the current program on its training inputs (memoized per
    epoch — repeated orchestrator rebuilds within one epoch profile
    once). *)
val profiles : t -> Scaf_profile.Profiles.t

(** An independent handle on the same program state: edits to either
    handle leave the other untouched. *)
val fork : t -> t

(** [commit t m'] — replace the program with [m'] and bump the epoch,
    provided [m'] lints without errors; on [Error] the handle is
    untouched and the lint errors come back as structured diagnostics.
    [?touched] restricts function-local lint passes to the named
    functions (module-wide checks always run). Returns the new epoch.
    Prefer the structured {!Edit} API; this is its commit point. *)
val commit :
  ?touched:string list ->
  t ->
  Scaf_ir.Irmod.t ->
  (int, Scaf_lint.Diagnostic.t list) result

(** Lint the current program with the full default pass suite. The
    program is already error-free by construction; this surfaces
    warnings, per-loop cost estimates and pass timings. *)
val lint : ?metrics:Scaf_trace.Metrics.t -> t -> Scaf_lint.Pass.report
