(** Short-lived speculation module (factored, §4.2.4).

    The lifetime profiler marks heap allocation sites whose objects never
    outlive the loop iteration that allocated them. Accesses to such
    objects cannot carry cross-iteration dependences. Containment is
    premise-queried (points-to answers; its prohibitive assertion is
    replaced), and validation is: separate the site into its own heap,
    heap-check the guarded pointers, and check the allocation/free balance
    at every iteration end. Short-lived and read-only site sets are
    disjoint by construction, so their separations never conflict. *)

open Scaf
open Scaf_cfg
open Scaf_profile
open Scaf_analysis

let sl_sites (profiles : Profiles.t) (lid : string) : Site.t list =
  List.filter
    (fun (s : Site.t) ->
      Lifetime_profile.short_lived profiles.Profiles.lifetime ~lid s)
    (Lifetime_profile.sites_of_loop profiles.Profiles.lifetime ~lid)

let assertions_for (profiles : Profiles.t) ~(lid : string) ~(site : Site.t)
    ~(guards : int list) : Assertion.t list =
  let iters =
    Option.value ~default:0
      (Hashtbl.find_opt profiles.Profiles.time.Time_profile.iterations lid)
  in
  let guard_cost =
    List.fold_left
      (fun acc g ->
        acc
        +. Cost_model.scaled Cost_model.heap_check
             (Residue_profile.exec_count profiles.Profiles.residues g))
      0.0 guards
  in
  [
    {
      Assertion.module_id = "short-lived";
      points = guards;
      cost = guard_cost;
      conflicts = Sep_util.site_conflicts [ site ];
      payload =
        Assertion.Heap_separate
          {
            loop = lid;
            sites = Sep_util.site_conflicts [ site ];
            gsites = Sep_util.site_globals [ site ];
            heap = Assertion.Short_lived_heap;
            inside = guards;
            outside = [];
          };
    };
    {
      Assertion.module_id = "short-lived";
      points = [];
      cost = Cost_model.scaled Cost_model.iter_check iters;
      conflicts = [];
      payload =
        Assertion.Short_lived_balance
          { loop = lid; sites = Sep_util.site_conflicts [ site ] };
    };
  ]

let answer (prog : Progctx.t) (profiles : Profiles.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      match (mq.Query.mtr, mq.Query.mloop, mq.Query.mtarget) with
      | (Query.Before | Query.After), Some lid, Query.TInstr i2 -> (
          let i1 = mq.Query.minstr in
          (* a dependence needs at least one store *)
          let has_store =
            match (Autil.rw_of_instr prog i1, Autil.rw_of_instr prog i2) with
            | `Store, (`Load | `Store) | `Load, `Store -> true
            | _ -> false
          in
          if not has_store then Module_api.no_answer q
          else
            match sl_sites profiles lid with
            | [] -> Module_api.no_answer q
            | sites -> (
                (* either endpoint inside a short-lived object kills the
                   cross-iteration dependence *)
                let attempt side =
                  match Autil.loc_of_instr prog side with
                  | None -> None
                  | Some loc -> (
                      match
                        Sep_util.find_containing_site ctx prog ~loop:lid
                          ?cc:mq.Query.mcc ~epoch:mq.Query.mepoch loc sites
                      with
                      | Some (site, presp) ->
                          (* only the side shown to live in the short-lived
                             object needs a heap check: whatever aliases it
                             dies with the iteration too *)
                          Some
                            {
                              Response.result =
                                Aresult.RModref Aresult.NoModRef;
                              options =
                                [
                                  assertions_for profiles ~lid ~site
                                    ~guards:[ side ];
                                ];
                              provenance = presp.Response.provenance;
                            }
                      | None -> None)
                in
                match attempt i1 with
                | Some r -> r
                | None -> (
                    match attempt i2 with
                    | Some r -> r
                    | None -> Module_api.no_answer q)))
      | _ -> Module_api.no_answer q)

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  Module_api.make ~name:"short-lived" ~kind:Module_api.Speculation
    ~factored:true (fun ctx q -> answer prog profiles ctx q)
