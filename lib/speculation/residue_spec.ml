(** Pointer-residue speculation module (base, §4.2.3, after Johnson).

    Characterizes each pointer by the observed values of its four
    least-significant bits. Accesses whose residue sets — widened by their
    access sizes — are disjoint cannot overlap, whatever their base
    objects. Validation is a couple of bitwise operations per guarded
    pointer computation and conflicts with nothing. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_profile
open Scaf_analysis

(* The profiled residue set standing for a pointer value: that of its
   defining instruction (recorded by the on_ptr/access hooks). *)
let residues_of (prog : Progctx.t) (profiles : Profiles.t) ~(fname : string)
    (v : Value.t) : (int * int * int) option =
  match v with
  | Value.Reg r -> (
      match Progctx.def prog fname r with
      | Some def -> (
          (* only pointer-producing defs (gep/alloca/malloc) have a residue
             entry describing their value; a load's entry describes the
             address it reads from *)
          let producing =
            match def.Instr.kind with
            | Instr.Gep _ | Instr.Alloca _ -> true
            | Instr.Call { callee; _ } ->
                Irmod.has_attr prog.Progctx.m callee Func.Malloc_like
            | _ -> false
          in
          if not producing then None
          else
            match
              Residue_profile.residue_set profiles.Profiles.residues
                def.Instr.id
            with
            | Some set ->
                Some
                  ( set,
                    def.Instr.id,
                    Residue_profile.exec_count profiles.Profiles.residues
                      def.Instr.id )
            | None -> None)
      | None -> None)
  | _ -> None

let assertion_for (access : int) (allowed : int) (count : int) : Assertion.t =
  {
    Assertion.module_id = "pointer-residue";
    points = [ access ];
    cost = Cost_model.scaled Cost_model.residue_check count;
    conflicts = [];
    payload = Assertion.Residue { access; allowed };
  }

(* Residue set of an access instruction itself (profiled at the access). *)
let residues_of_access (profiles : Profiles.t) (id : int) : (int * int) option =
  match Residue_profile.residue_set profiles.Profiles.residues id with
  | Some set ->
      Some (set, Residue_profile.exec_count profiles.Profiles.residues id)
  | None -> None

let answer (prog : Progctx.t) (profiles : Profiles.t) (_ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Modref mq -> (
      (* self-contained modref handling: compare the two accesses' own
         profiled residue sets — the technique works in isolation, as in
         prior speculative systems *)
      match (mq.Query.mtarget, Autil.loc_of_instr prog mq.Query.minstr) with
      | Query.TInstr i2, Some loc1 -> (
          match
            ( Autil.loc_of_instr prog i2,
              residues_of_access profiles mq.Query.minstr,
              residues_of_access profiles i2 )
          with
          | Some loc2, Some (s1, c1), Some (s2, c2)
            when Residue_profile.disjoint s1 loc1.Query.size s2
                   loc2.Query.size ->
              Response.speculative (Aresult.RModref Aresult.NoModRef)
                [
                  assertion_for mq.Query.minstr s1 c1;
                  assertion_for i2 s2 c2;
                ]
          | _ -> Module_api.no_answer q)
      | _ -> Module_api.no_answer q)
  | Query.Alias a -> (
      if a.Query.adr = Some Query.DMustAlias then Module_api.no_answer q
      else
        match
          ( residues_of prog profiles ~fname:a.Query.a1.Query.fname
              a.Query.a1.Query.ptr,
            residues_of prog profiles ~fname:a.Query.a2.Query.fname
              a.Query.a2.Query.ptr )
        with
        | Some (s1, d1, c1), Some (s2, d2, c2) ->
            if
              Residue_profile.disjoint s1 a.Query.a1.Query.size s2
                a.Query.a2.Query.size
            then
              Response.speculative (Aresult.RAlias Aresult.NoAlias)
                [ assertion_for d1 s1 c1; assertion_for d2 s2 c2 ]
            else Module_api.no_answer q
        | _ -> Module_api.no_answer q)

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  Module_api.make ~name:"pointer-residue" ~kind:Module_api.Speculation
    ~factored:false (fun ctx q -> answer prog profiles ctx q)
