(** Points-to speculation module (base, §4.2.3).

    Answers alias queries from the points-to profile: pointers whose
    observed underlying-object sets are disjoint get NoAlias; a location
    observed wholly inside another's object gets SubAlias/MustAlias. The
    calling-context query parameter selects the context-sensitive profile
    view, distinguishing dynamic instances of one allocation site.

    Full points-to validation is prohibitively expensive, so every answer
    carries a prohibitive-cost assertion: rational clients never pay it,
    but the read-only and short-lived modules consume these answers
    through premise queries and *replace* the assertion with their own
    cheap heap checks. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_profile
open Scaf_analysis

(* Memory accesses whose address operand is exactly a given register: their
   access entries describe that register's observed pointees. Built once. *)
let addr_uses (prog : Progctx.t) : (string * string, int list) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Irmod.iter_instrs prog.Progctx.m (fun f _ (i : Instr.t) ->
      match Instr.footprint i with
      | Some (Value.Reg r, _) ->
          let key = (f.Func.name, r) in
          Hashtbl.replace tbl key
            (i.Instr.id :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
      | _ -> ());
  tbl

let merge_entries (es : Points_to_profile.entry list) :
    Points_to_profile.entry option =
  match es with
  | [] -> None
  | e :: rest ->
      Some
        (List.fold_left
           (fun (acc : Points_to_profile.entry) (e : Points_to_profile.entry) ->
             {
               Points_to_profile.sites =
                 Site.Set.union acc.Points_to_profile.sites
                   e.Points_to_profile.sites;
               min_off = min acc.Points_to_profile.min_off e.Points_to_profile.min_off;
               max_off = max acc.Points_to_profile.max_off e.Points_to_profile.max_off;
               const_off =
                 (if acc.Points_to_profile.const_off = e.Points_to_profile.const_off
                  then acc.Points_to_profile.const_off
                  else None);
               count = acc.Points_to_profile.count + e.Points_to_profile.count;
             })
           { e with Points_to_profile.sites = e.Points_to_profile.sites }
           rest)

(* The profile entry standing for a pointer value: the entry of its
   defining instruction (gep/malloc/alloca results are recorded by the
   profiler's on_ptr hook), a synthetic entry for globals, or — for
   pointers of other provenance (e.g. load results) — the merged access
   entries of the memory operations addressed by the register. *)
let entry_of ?(uses : (string * string, int list) Hashtbl.t option)
    (prog : Progctx.t) (profiles : Profiles.t) ?cc ~(fname : string)
    (v : Value.t) : (Points_to_profile.entry * int option) option =
  match v with
  | Value.Global g ->
      let size =
        match Irmod.find_global prog.Progctx.m g with
        | Some gl -> gl.Irmod.gsize
        | None -> 1
      in
      ignore size;
      Some
        ( {
            Points_to_profile.sites =
              Site.Set.singleton { Site.skind = Site.SGlobal g; sctx = [] };
            min_off = 0;
            max_off = 0;
            const_off = Some 0;
            count = 1;
          },
          None )
  | Value.Reg r -> (
      match Progctx.def prog fname r with
      | Some def -> (
          (* only pointer-PRODUCING definitions carry a profile entry about
             the value: gep/alloca/malloc results (the on_ptr hook). A
             load's access entry describes the address it reads FROM, not
             the pointer it produces — using it here would be unsound. *)
          let producing =
            match def.Instr.kind with
            | Instr.Gep _ | Instr.Alloca _ -> true
            | Instr.Call { callee; _ } ->
                Irmod.has_attr prog.Progctx.m callee Func.Malloc_like
            | _ -> false
          in
          if producing then
            match
              Points_to_profile.observed profiles.Profiles.points_to ?ctx:cc
                def.Instr.id
            with
            | Some e -> Some (e, Some def.Instr.id)
            | None -> None
          else
            (* fall back to the access entries of memory operations that
               use this register directly as their address *)
            match uses with
            | None -> None
            | Some uses -> (
                match Hashtbl.find_opt uses (fname, r) with
                | Some (first :: _ as ids) -> (
                    let es =
                      List.filter_map
                        (Points_to_profile.observed profiles.Profiles.points_to
                           ?ctx:cc)
                        ids
                    in
                    if List.length es <> List.length ids then None
                    else
                      match merge_entries es with
                      | Some e -> Some (e, Some first)
                      | None -> None)
                | _ -> None))
      | None -> None)
  | _ -> None

let assertion_for (instr : int option) : Assertion.t =
  {
    Assertion.module_id = "points-to";
    points = Option.to_list instr;
    cost = Cost_model.prohibitive;
    conflicts = [];
    payload = Assertion.Points_to_objects { instr = Option.value ~default:(-1) instr };
  }

(* Instance stability for Must/SubAlias across iterations: globals always;
   allocation sites only when outside the query loop (for cross-iteration)
   or unique per iteration (intra). *)
let site_stable (prog : Progctx.t) (tr : Query.temporal) (lid : string option)
    (s : Site.t) : bool =
  match s.Site.skind with
  | Site.SGlobal _ -> true
  | Site.SStack id | Site.SHeap id -> (
      match tr with
      | Query.Same -> Autil.unique_per_iteration prog ~lid id
      | Query.Before | Query.After -> (
          match lid with
          | None -> false
          | Some lid -> (
              match Progctx.loop_of_lid prog lid with
              | Some (lf, loop) -> (
                  match Progctx.loops_of prog lf with
                  | Some li -> not (Loops.contains_instr li loop id)
                  | None -> false)
              | None -> false)))

let answer ~uses (prog : Progctx.t) (profiles : Profiles.t)
    (_ctx : Module_api.Ctx.t) (q : Query.t) : Response.t =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      let cc = a.Query.acc in
      match
        ( entry_of ~uses prog profiles ?cc ~fname:a.Query.a1.Query.fname
            a.Query.a1.Query.ptr,
          entry_of ~uses prog profiles ?cc ~fname:a.Query.a2.Query.fname
            a.Query.a2.Query.ptr )
      with
      | Some (e1, d1), Some (e2, d2) ->
          let asserts =
            List.sort_uniq Assertion.compare
              [ assertion_for d1; assertion_for d2 ]
          in
          if
            Points_to_profile.disjoint_sites ~ctx_sensitive:(cc <> None) e1 e2
          then
            Response.speculative (Aresult.RAlias Aresult.NoAlias) asserts
          else begin
            (* containment: every observed site of one side is the same
               dynamic site — static point AND allocation context; two
               instances of one static site (e.g. one malloc reached from
               two call sites) are different objects *)
            let single_site (e : Points_to_profile.entry) : Site.t option =
              match Site.Set.choose_opt e.Points_to_profile.sites with
              | Some s
                when Site.Set.for_all
                       (fun s' -> Site.equal s s')
                       e.Points_to_profile.sites ->
                  Some s
              | _ -> None
            in
            match (single_site e1, single_site e2) with
            | Some s1, Some s2
              when Site.equal s1 s2
                   && site_stable prog a.Query.atr a.Query.aloop s1 -> (
                match
                  (e1.Points_to_profile.const_off, e2.Points_to_profile.const_off)
                with
                | Some o1, Some o2 ->
                    let r =
                      Basic_aa.classify_offsets (Int64.of_int o1)
                        a.Query.a1.Query.size (Int64.of_int o2)
                        a.Query.a2.Query.size
                    in
                    if r = Aresult.MayAlias then Module_api.no_answer q
                    else Response.speculative (Aresult.RAlias r) asserts
                | _ ->
                    (* one side at a fixed offset: its exact extent can
                       contain the other's whole observed range *)
                    let contains (outer : Points_to_profile.entry)
                        (osize : int) (inner : Points_to_profile.entry) =
                      match outer.Points_to_profile.const_off with
                      | Some o ->
                          inner.Points_to_profile.min_off >= o
                          && inner.Points_to_profile.max_off < o + osize
                      | None -> false
                    in
                    if
                      contains e1 a.Query.a1.Query.size e2
                      || contains e2 a.Query.a2.Query.size e1
                    then
                      Response.speculative (Aresult.RAlias Aresult.SubAlias)
                        asserts
                    else Module_api.no_answer q)
            | _ -> Module_api.no_answer q
          end
      | _ -> Module_api.no_answer q)

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  let uses = addr_uses prog in
  Module_api.make ~name:"points-to" ~kind:Module_api.Speculation
    ~factored:false (fun ctx q -> answer ~uses prog profiles ctx q)
