(** Shared machinery for the separation-speculation modules (read-only and
    short-lived), which the paper obtains by decomposing the monolithic
    analysis of Johnson et al. [25] into simple collaborating modules
    (§4.2.1 "Design with Collaboration in Mind"). *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_profile

(** A queryable handle for an allocation site: the SSA value holding the
    object's base address, the object size, and the owning function. *)
let site_handle (prog : Progctx.t) (s : Site.t) : (Value.t * int * string) option
    =
  match s.Site.skind with
  | Site.SGlobal g -> (
      match Irmod.find_global prog.Progctx.m g with
      | Some gl -> Some (Value.Global g, gl.Irmod.gsize, "")
      | None -> None)
  | Site.SHeap id | Site.SStack id -> (
      match Progctx.occ prog id with
      | Some o -> (
          let fname = o.Irmod.Index.func.Func.name in
          match (o.Irmod.Index.instr.Instr.dst, o.Irmod.Index.instr.Instr.kind) with
          | Some dst, Instr.Call { args = Value.Int n :: _; _ } ->
              Some (Value.Reg dst, Int64.to_int n, fname)
          | Some dst, Instr.Alloca { size } -> Some (Value.Reg dst, size, fname)
          | Some dst, _ -> Some (Value.Reg dst, 1 lsl 20, fname)
          | None, _ -> None)
      | None -> None)

(** Program points whose transformation re-allocates the site (the
    conflict points of separation assertions). *)
let site_conflicts (sites : Site.t list) : int list =
  List.filter_map
    (fun (s : Site.t) ->
      match s.Site.skind with
      | Site.SHeap id | Site.SStack id -> Some id
      | Site.SGlobal _ -> None)
    sites

(** Global objects among the sites (separated at program entry instead of
    at an allocation instruction). *)
let site_globals (sites : Site.t list) : string list =
  List.filter_map
    (fun (s : Site.t) ->
      match s.Site.skind with
      | Site.SGlobal g -> Some g
      | Site.SHeap _ | Site.SStack _ -> None)
    sites

(** [loc_within_site ctx prog ~fname loc s] premise-queries the ensemble —
    in practice the points-to speculation module — asking whether [loc]
    lies inside an object of site [s]. On SubAlias/MustAlias, returns the
    premise response (whose prohibitive points-to assertion the caller
    *replaces* with its own cheap heap check, §4.2.3). *)
let loc_within_site (ctx : Module_api.Ctx.t) (prog : Progctx.t)
    ?(loop : string option) ?(cc : int list option) ?(epoch = 0)
    (loc : Query.memloc) (s : Site.t) : Response.t option =
  match site_handle prog s with
  | None -> None
  | Some (sptr, ssize, sfname) -> (
      let sfname = if sfname = "" then loc.Query.fname else sfname in
      let premise =
        Query.Alias
          {
            Query.a1 = { Query.ptr = sptr; size = ssize; fname = sfname };
            atr = Query.Same;
            a2 = loc;
            aloop = loop;
            acc = cc;
            adr = None;
            aepoch = epoch;
          }
      in
      let presp = Module_api.Ctx.ask ctx premise in
      match presp.Response.result with
      | Aresult.RAlias Aresult.SubAlias | Aresult.RAlias Aresult.MustAlias ->
          Some presp
      | _ -> None)

(** Find the first site in [sites] containing [loc] (capped search). *)
let find_containing_site (ctx : Module_api.Ctx.t) (prog : Progctx.t)
    ?loop ?cc ?epoch (loc : Query.memloc) (sites : Site.t list) :
    (Site.t * Response.t) option =
  let rec go n = function
    | [] -> None
    | s :: rest -> (
        if n <= 0 then None
        else
          match loc_within_site ctx prog ?loop ?cc ?epoch loc s with
          | Some r -> Some (s, r)
          | None -> go (n - 1) rest)
  in
  go 8 sites
