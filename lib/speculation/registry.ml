(** The speculation-module ensemble, in the default consultation order:
    cheapest average assertion cost first (§3.3 — "modules with the smaller
    average cost of speculative assertions are prioritized"); points-to
    last, since its own assertions are prohibitive and its value is as a
    premise resolver.

    Capability declarations ({!Scaf.Module_api.caps}) annotate what each
    module answers and which premise classes it emits; the audit layer's
    query-plan lint consumes them. Every speculation module reasons from
    per-function profile facts about the queried instructions, so all
    declare [Reach_local] with [uses_profile]: an edit invalidates their
    answers exactly when the query's function (or its profile) changed. *)

open Scaf.Module_api

let w answers emits m =
  with_caps { answers; emits; reach = Reach_local; uses_profile = true } m

let control profiles =
  (* re-submits the incoming modref with a speculative control-flow view *)
  w
    [ CModref_instr; CModref_loc ]
    [ CModref_instr; CModref_loc ]
    (Control_spec.create profiles)

let value_pred profiles =
  w [ CModref_instr ] [ CAlias ] (Value_pred_spec.create profiles)

let residue profiles =
  w [ CModref_instr; CAlias ] [] (Residue_spec.create profiles)

let read_only profiles =
  w [ CModref_instr ] [ CAlias ] (Read_only_spec.create profiles)

let short_lived profiles =
  w [ CModref_instr ] [ CAlias ] (Short_lived_spec.create profiles)

let points_to profiles = w [ CAlias ] [] (Points_to_spec.create profiles)

let create (profiles : Scaf_profile.Profiles.t) : Scaf.Module_api.t list =
  [
    control profiles;
    value_pred profiles;
    residue profiles;
    read_only profiles;
    short_lived profiles;
    points_to profiles;
  ]

(** The composition units for the *composition by confluence* baseline
    (§5): "each dependence query is passed to each module in isolation,
    and the confluence of individual results is returned". Only the memory
    analysis modules are grouped (as CAF), to avoid crediting this work for
    CAF's collaboration; every speculative technique stands alone, so e.g.
    the read-only module cannot lean on points-to answers the way it does
    inside SCAF. *)
let confluence_units (profiles : Scaf_profile.Profiles.t) :
    Scaf.Module_api.t list list =
  [
    [ control profiles ];
    [ value_pred profiles ];
    [ residue profiles ];
    [ read_only profiles ];
    [ short_lived profiles ];
    [ points_to profiles ];
  ]
