(** Read-only speculation module (factored, §4.2.4).

    The lifetime profiler marks allocation sites whose objects are read but
    never written inside a target loop. A dependence between a store and a
    load whose location lies inside such an object is asserted absent: the
    store would otherwise violate read-only-ness.

    The containment fact is obtained through a premise query (resolved by
    the points-to speculation module) whose prohibitive points-to assertion
    is *replaced* by this module's own cheap validation: re-allocate the
    read-only objects into a separate heap and guard the store's pointer
    with a heap check (Figure 7a). *)

open Scaf
open Scaf_cfg
open Scaf_profile
open Scaf_analysis

let ro_sites (profiles : Profiles.t) (lid : string) : Site.t list =
  List.filter
    (Lifetime_profile.read_only profiles.Profiles.lifetime ~lid)
    (Lifetime_profile.sites_of_loop profiles.Profiles.lifetime ~lid)

let assertion_for (profiles : Profiles.t) ~(lid : string) ~(site : Site.t)
    ~(protected_side : int) ~(store_side : int) : Assertion.t =
  let count g = Residue_profile.exec_count profiles.Profiles.residues g in
  {
    Assertion.module_id = "read-only";
    points = [ protected_side; store_side ];
    cost =
      Cost_model.scaled Cost_model.heap_check
        (count protected_side + count store_side);
    conflicts = Sep_util.site_conflicts [ site ];
    payload =
      Assertion.Heap_separate
        {
          loop = lid;
          sites = Sep_util.site_conflicts [ site ];
          gsites = Sep_util.site_globals [ site ];
          heap = Assertion.Read_only_heap;
          inside = [ protected_side ];
          outside = [ store_side ];
        };
  }

let answer (prog : Progctx.t) (profiles : Profiles.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      match (mq.Query.mloop, mq.Query.mtarget) with
      | Some lid, Query.TInstr i2 -> (
          let i1 = mq.Query.minstr in
          (* orient: the store side would violate read-only-ness *)
          let oriented =
            match (Autil.rw_of_instr prog i1, Autil.rw_of_instr prog i2) with
            | `Store, `Load -> Some (i1, i2)
            | `Load, `Store -> Some (i2, i1)
            | `Store, `Store -> Some (i1, i2)
            | _ -> None
          in
          match oriented with
          | None -> Module_api.no_answer q
          | Some (store_side, protected_side) -> (
              match ro_sites profiles lid with
              | [] -> Module_api.no_answer q
              | sites -> (
                  match Autil.loc_of_instr prog protected_side with
                  | None -> Module_api.no_answer q
                  | Some loc -> (
                      match
                        Sep_util.find_containing_site ctx prog ~loop:lid
                          ?cc:mq.Query.mcc ~epoch:mq.Query.mepoch loc sites
                      with
                      | Some (site, presp) ->
                          (* replace the premise's prohibitive points-to
                             assertion with our cheap heap check *)
                          {
                            Response.result = Aresult.RModref Aresult.NoModRef;
                            options =
                              [
                                [
                                  assertion_for profiles ~lid ~site
                                    ~protected_side ~store_side;
                                ];
                              ];
                            provenance = presp.Response.provenance;
                          }
                      | None -> Module_api.no_answer q))))
      | _ -> Module_api.no_answer q)

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  Module_api.make ~name:"read-only" ~kind:Module_api.Speculation ~factored:true
    (fun ctx q -> answer prog profiles ctx q)
