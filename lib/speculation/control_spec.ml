(** Control speculation module (factored, §4.2.4).

    Uses the edge profile to find *speculatively dead* blocks (never
    executed while their function ran). Two behaviours:

    - directly answers modref queries whose endpoints are speculatively
      dead ("dead instructions cannot source or sink dependences");
    - initiates collaboration by re-issuing the incoming query with a
      *speculative control-flow view* (dominator/post-dominator trees of
      the CFG with dead blocks removed). Control-flow-sensitive modules
      such as kill-flow then prove facts the static CFG cannot support;
      this module appends the required dead-block assertions to whatever
      comes back (Figure 6's flow).

    Validation is a misspec beacon at the head of each dead block — zero
    cost on the hot path. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_profile

type fstate = {
  dead : int list;  (** dead block indices *)
  spec_view : Ctrl.t;  (** view with dead blocks filtered; physical identity
                           marks queries we already augmented *)
}

let fstate_of (prog : Progctx.t) (profiles : Profiles.t)
    (cache : (string, fstate option) Hashtbl.t) (fname : string) :
    fstate option =
  match Hashtbl.find_opt cache fname with
  | Some v -> v
  | None ->
      let v =
        match Progctx.cfg_of prog fname with
        | None -> None
        | Some cfg ->
            let dead =
              List.filter
                (fun b ->
                  Edge_profile.spec_dead profiles.Profiles.edges ~func:fname
                    ~label:(Cfg.label cfg b))
                (List.init (Cfg.num_blocks cfg) Fun.id)
            in
            if dead = [] then None
            else
              Some
                {
                  dead;
                  spec_view = Ctrl.filtered cfg ~dead:(fun b -> List.mem b dead);
                }
      in
      Hashtbl.replace cache fname v;
      v

let beacon_of (cfg : Cfg.t) (b : int) : int =
  match (Cfg.block cfg b).Block.instrs with
  | i :: _ -> i.Instr.id
  | [] -> (Cfg.block cfg b).Block.term.Instr.tid

let dead_block_assertion (cfg : Cfg.t) (fname : string) (b : int) : Assertion.t
    =
  {
    Assertion.module_id = "control-spec";
    points = [ beacon_of cfg b ];
    cost = Cost_model.ctrl_check;
    conflicts = [];
    payload =
      Assertion.Ctrl_block_dead
        { fname; label = Cfg.label cfg b; beacon = beacon_of cfg b };
  }

(* Is instruction [id] in a speculatively dead block? *)
let dead_instr (prog : Progctx.t) (fs : fstate) (fname : string) (id : int) :
    int option =
  match Progctx.cfg_of prog fname with
  | Some cfg -> (
      match Cfg.position cfg id with
      | Some (b, _) when List.mem b fs.dead -> Some b
      | _ -> None)
  | None -> None

let answer (prog : Progctx.t) (profiles : Profiles.t)
    (cache : (string, fstate option) Hashtbl.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      match Progctx.func_of_instr prog mq.Query.minstr with
      | None -> Module_api.no_answer q
      | Some f -> (
          let fname = f.Func.name in
          match fstate_of prog profiles cache fname with
          | None -> Module_api.no_answer q
          | Some fs -> (
              let cfg = Option.get (Progctx.cfg_of prog fname) in
              (* endpoints in dead blocks *)
              let dead_endpoint =
                match dead_instr prog fs fname mq.Query.minstr with
                | Some b -> Some b
                | None -> (
                    match mq.Query.mtarget with
                    | Query.TInstr i2 -> dead_instr prog fs fname i2
                    | Query.TLoc _ -> None)
              in
              match dead_endpoint with
              | Some b ->
                  Response.speculative (Aresult.RModref Aresult.NoModRef)
                    [ dead_block_assertion cfg fname b ]
              | None -> (
                  (* factored: re-issue with the speculative view, unless
                     the query already carries it *)
                  let already =
                    match mq.Query.mctrl with
                    | Some c -> c == fs.spec_view
                    | None -> false
                  in
                  if already then Module_api.no_answer q
                  else begin
                    let premise =
                      Query.Modref { mq with Query.mctrl = Some fs.spec_view }
                    in
                    let presp = Module_api.Ctx.ask ctx premise in
                    match presp.Response.result with
                    | Aresult.RModref Aresult.NoModRef ->
                        let extra =
                          List.map (dead_block_assertion cfg fname) fs.dead
                        in
                        {
                          presp with
                          Response.options =
                            List.map
                              (fun o ->
                                List.sort_uniq Assertion.compare (extra @ o))
                              presp.Response.options;
                        }
                    | _ -> Module_api.no_answer q
                  end))))

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  let cache = Hashtbl.create 16 in
  Module_api.make ~name:"control-spec" ~kind:Module_api.Speculation
    ~factored:true (fun ctx q -> answer prog profiles cache ctx q)
