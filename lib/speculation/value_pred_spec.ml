(** Value-prediction speculation module (factored, §4.2.4).

    Loads that produced the same value on every profiled execution are
    *predictable*. Dependences that source from or sink into a predictable
    load are asserted absent (the load's value is supplied by the validated
    prediction, decoupling it from memory ordering).

    Factored behaviour: a predictable load [k] that post-dominates the
    dependence source and dominates its destination acts as a *kill*: the
    module premise-queries whether [k]'s footprint must-alias the
    dependent footprint; on MustAlias the dependence is asserted absent
    under the prediction check on [k]. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_profile
open Scaf_analysis

let assertion_for (profiles : Profiles.t) (load : int) (value : int64) :
    Assertion.t =
  {
    Assertion.module_id = "value-pred";
    points = [ load ];
    cost =
      Cost_model.scaled Cost_model.value_check
        (Value_profile.exec_count profiles.Profiles.values load);
    conflicts = [];
    payload = Assertion.Value_predict { load; value };
  }

(* Predictable loads of a function (or loop), with their values. *)
let predictable_loads_in (prog : Progctx.t) (profiles : Profiles.t)
    ~(fname : string) ~(lid : string option) : (Instr.t * int64) list =
  match Progctx.cfg_of prog fname with
  | None -> []
  | Some cfg ->
      let in_scope (i : Instr.t) =
        match lid with
        | None -> true
        | Some lid -> (
            match Progctx.loop_of_lid prog lid with
            | Some (lf, loop) when String.equal lf fname -> (
                match Progctx.loops_of prog fname with
                | Some li -> Loops.contains_instr li loop i.Instr.id
                | None -> false)
            | _ -> false)
      in
      List.concat_map
        (fun b ->
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Load _ when in_scope i -> (
                  match
                    Value_profile.predictable profiles.Profiles.values
                      i.Instr.id
                  with
                  | Some (v, _) -> Some (i, v)
                  | None -> None)
              | _ -> None)
            (Cfg.block cfg b).Block.instrs)
        (List.init (Cfg.num_blocks cfg) Fun.id)

let answer (prog : Progctx.t) (profiles : Profiles.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      match mq.Query.mtarget with
      | Query.TLoc _ -> Module_api.no_answer q
      | Query.TInstr i2 -> (
          let i1 = mq.Query.minstr in
          let k1 = Autil.rw_of_instr prog i1
          and k2 = Autil.rw_of_instr prog i2 in
          let pred id =
            Value_profile.predictable profiles.Profiles.values id
          in
          (* direct: one endpoint is a predictable load, the other a store *)
          match (k1, k2) with
          | `Load, `Store when pred i1 <> None ->
              let v, _ = Option.get (pred i1) in
              Response.speculative (Aresult.RModref Aresult.NoModRef)
                [ assertion_for profiles i1 v ]
          | `Store, `Load when pred i2 <> None ->
              let v, _ = Option.get (pred i2) in
              Response.speculative (Aresult.RModref Aresult.NoModRef)
                [ assertion_for profiles i2 v ]
          | `Store, (`Load | `Store) -> (
              (* kill behaviour: predictable load between the endpoints *)
              match Progctx.func_of_instr prog i1 with
              | None -> Module_api.no_answer q
              | Some f -> (
                  let fname = f.Func.name in
                  let ctrl =
                    match mq.Query.mctrl with
                    | Some c -> Some c
                    | None -> Progctx.ctrl_of prog fname
                  in
                  match (ctrl, Autil.loc_of_instr prog i2) with
                  | Some ctrl, Some loc2 ->
                      let candidates =
                        predictable_loads_in prog profiles ~fname
                          ~lid:mq.Query.mloop
                      in
                      let try_k ((k : Instr.t), v) : Response.t option =
                        if k.Instr.id = i1 || k.Instr.id = i2 then None
                        else if
                          not
                            (Ctrl.post_dominates_instr ctrl k.Instr.id i1
                            && Ctrl.dominates_instr ctrl k.Instr.id i2)
                        then None
                        else
                          match Instr.footprint k with
                          | None -> None
                          | Some (kptr, ksize) -> (
                              if ksize < loc2.Query.size then None
                              else
                                let premise =
                                  Query.alias ~fname ?loop:mq.Query.mloop
                                    ?cc:mq.Query.mcc ~dr:Query.DMustAlias
                                    ~tr:Query.Same
                                    (kptr, loc2.Query.size)
                                    (loc2.Query.ptr, loc2.Query.size)
                                in
                                let presp = Module_api.Ctx.ask ctx premise in
                                match presp.Response.result with
                                | Aresult.RAlias Aresult.MustAlias ->
                                    Some
                                      {
                                        Response.result =
                                          Aresult.RModref Aresult.NoModRef;
                                        options =
                                          List.map
                                            (fun o ->
                                              List.sort_uniq Assertion.compare
                                                (assertion_for profiles
                                                   k.Instr.id v
                                                :: o))
                                            presp.Response.options;
                                        provenance = presp.Response.provenance;
                                      }
                                | _ -> None)
                      in
                      let rec first = function
                        | [] -> Module_api.no_answer q
                        | c :: rest -> (
                            match try_k c with Some r -> r | None -> first rest)
                      in
                      first candidates
                  | _ -> Module_api.no_answer q))
          | _ -> Module_api.no_answer q))

let create (profiles : Profiles.t) : Module_api.t =
  let prog = profiles.Profiles.ctx in
  Module_api.make ~name:"value-pred" ~kind:Module_api.Speculation
    ~factored:true (fun ctx q -> answer prog profiles ctx q)
