(** scaf-eval: regenerate the paper's evaluation artifacts.

    Subcommands: [table1], [fig8], [fig9], [table2], [fig10], [all] (the
    whole evaluation), [bench NAME] (per-benchmark detail), [explain NAME
    [QUERY]] (pretty-print the full derivation tree of one PDG query),
    [speculate NAME] (plan + instrument + run with recovery for one
    benchmark), [audit] (the framework self-audit: contradiction detection,
    dynamic oracle, query-plan lint — non-zero exit on soundness findings),
    and [resilience] (the seeded fault-injection matrix: recovery scenarios
    plus orchestrator chaos).

    The evaluation subcommands share one flag set ({!common}): benchmark
    selection, worker-domain count, and the observability switches
    [--cache-stats], [--trace FILE] (Chrome trace_event JSON of the SCAF
    scheme's derivations) and [--metrics] (counter/histogram registry dump).
    Observability output goes to stderr or a file — stdout stays
    byte-identical whatever the flags, preserving the [--jobs] determinism
    contract. *)

open Cmdliner
open Scaf_report

let clock () = Unix.gettimeofday ()

let select_benchmarks (names : string list) : Scaf_suite.Program.t list =
  match names with
  | [] -> Scaf_suite.Registry.all ()
  | names ->
      List.map
        (fun n ->
          match Scaf_suite.Registry.find n with
          | Some b -> b
          | None -> Fmt.failwith "unknown benchmark %S" n)
        names

(* ------------------------------------------------------------------ *)
(* The shared flag set of the evaluation subcommands                   *)
(* ------------------------------------------------------------------ *)

type common = {
  benchmarks : string list;
  jobs : int;
  cache_stats : bool;
  trace_out : string option;
  metrics : bool;
}

let bench_arg =
  Arg.(value & opt_all string [] & info [ "b"; "benchmark" ] ~docv:"NAME"
       ~doc:"Restrict to benchmark $(docv) (repeatable).")

let jobs_arg =
  Arg.(
    value
    & opt int (Scaf_pdg.Schemes.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the evaluation: each scheme's hot loops fan \
           out across $(docv) domains, one orchestrator per worker over a \
           shared canonicalizing cache. Tables are byte-identical for every \
           $(docv); 1 disables spawning. Defaults to the recommended domain \
           count.")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print per-scheme shared-cache counters (hits, canonical hits, \
           evictions, lock contention) to stderr after the evaluation.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a provenance tree for every SCAF client query and write \
           all of them as Chrome trace_event JSON to $(docv) (load in \
           chrome://tracing or Perfetto). Strictly observational: tables \
           are unchanged.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Maintain the metrics registry (query classes, cache behaviour, \
           bail-outs, premise depths, latencies) during the SCAF scheme \
           and dump it as JSON to stderr after the evaluation.")

let common_term : common Term.t =
  let mk benchmarks jobs cache_stats trace_out metrics =
    { benchmarks; jobs; cache_stats; trace_out; metrics }
  in
  Term.(
    const mk $ bench_arg $ jobs_arg $ cache_stats_arg $ trace_arg
    $ metrics_arg)

let run_table1 () = print_endline Report.table1

let report_cache_stats evals =
  List.iter
    (fun (name, (s : Scaf.Qcache.Snapshot.t)) ->
      Printf.eprintf
        "cache %-12s lookups %8d  hit%% %5.1f  l1-hits %8d  \
         canonical-hits %6d  evictions %6d  publishes %6d  steals %4d  \
         contended %4d  entries %6d\n"
        name
        (Scaf.Qcache.Snapshot.lookups s)
        (Scaf.Qcache.Snapshot.hit_rate s)
        s.Scaf.Qcache.Snapshot.l1_hits s.Scaf.Qcache.Snapshot.canonical_hits
        s.Scaf.Qcache.Snapshot.evictions s.Scaf.Qcache.Snapshot.publishes
        s.Scaf.Qcache.Snapshot.steals s.Scaf.Qcache.Snapshot.contended
        s.Scaf.Qcache.Snapshot.entries)
    (Experiments.cache_stats_summary evals)

let sink_of (c : common) : Scaf_trace.Sink.t option =
  Option.map (fun _ -> Scaf_trace.Sink.create ~clock ()) c.trace_out

let metrics_of (c : common) : Scaf_trace.Metrics.t option =
  if c.metrics then Some Scaf_trace.Metrics.global else None

(* Flush the observability flags' output once the run is over: the Chrome
   trace file and the metrics JSON dump (stderr). *)
let emit_observability (c : common) (trace : Scaf_trace.Sink.t option) =
  (match (c.trace_out, trace) with
  | Some path, Some sink ->
      let oc = open_out path in
      output_string oc (Scaf_trace.Sink.to_chrome_json sink);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "trace: wrote %d derivation tree(s)%s to %s\n"
        (Scaf_trace.Sink.root_count sink)
        (match Scaf_trace.Sink.dropped sink with
        | 0 -> ""
        | d -> Printf.sprintf " (%d dropped)" d)
        path
  | _ -> ());
  if c.metrics then
    prerr_endline (Scaf_trace.Metrics.to_json Scaf_trace.Metrics.global)

(* Run the evaluation under [c]'s flags and hand the reports to [f]. All
   observability output lands on stderr or in files, never stdout. One
   work-stealing pool is scoped around the whole evaluation — every figure
   of a run shares it instead of respawning domains per figure; reports
   are byte-identical at any [--jobs N] (pool size 1 spawns nothing). *)
let with_evals ?(sequential = false) (c : common) f =
  let trace = sink_of c in
  let metrics = metrics_of c in
  let jobs = if sequential then 1 else c.jobs in
  let evals =
    Scaf_pdg.Scheduler.with_pool ~jobs (fun pool ->
        Experiments.evaluate_all ~pool ?trace ?metrics
          ~benchmarks:(select_benchmarks c.benchmarks) ())
  in
  f evals;
  if c.cache_stats then report_cache_stats evals;
  emit_observability c trace

let run_fig8 c =
  with_evals c (fun evals ->
      print_endline "Figure 8 — dependence coverage (%NoDep, time-weighted):";
      print_endline (Experiments.fig8 evals);
      print_endline (Experiments.fig8_deltas evals))

let run_fig9 c =
  with_evals c (fun evals ->
      print_endline "Figure 9 — per-hot-loop Confluence vs SCAF:";
      print_endline (Experiments.fig9 evals))

let run_table2 c =
  with_evals c (fun evals ->
      print_endline "Table 2 — collaboration coverage:";
      print_endline (Experiments.table2 evals))

let run_fig10 c =
  (* latency CDFs need one resolver per scheme timing every query — the
     measurement itself must stay sequential *)
  with_evals ~sequential:true c (fun evals ->
      print_endline "Figure 10 — query latency CDF:";
      print_endline (Experiments.fig10 ~clock evals))

let run_all c =
  with_evals c (fun evals ->
      print_endline "Table 1 — integration approaches:";
      print_endline Report.table1;
      print_endline "";
      print_endline "Figure 8 — dependence coverage (%NoDep, time-weighted):";
      print_endline (Experiments.fig8 evals);
      print_endline (Experiments.fig8_deltas evals);
      print_endline "";
      print_endline "Figure 9 — per-hot-loop Confluence vs SCAF:";
      print_endline (Experiments.fig9 evals);
      print_endline "Table 2 — collaboration coverage:";
      print_endline (Experiments.table2 evals);
      print_endline "Figure 10 — query latency CDF:";
      print_endline (Experiments.fig10 ~clock evals))

(* ------------------------------------------------------------------ *)
(* explain: one query's full derivation tree                           *)
(* ------------------------------------------------------------------ *)

(* Replay the PDG workload of [name] through a traced SCAF ensemble,
   sequentially, with sampling off — the i-th collected tree then IS the
   derivation of the i-th query issued, so query ids are stable
   ("<loop>#<index>", or a global index). *)
let run_explain name query_sel =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  ignore (Scaf_suite.Program.program b);
  let profiles = Scaf_suite.Program.profiles b in
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let sink = Scaf_trace.Sink.create ~max_roots:max_int ~clock () in
  let resolver =
    (Scaf_pdg.Schemes.scaf_scheme ~trace:sink profiles).Scaf_pdg.Schemes.spawn
      ()
  in
  let loops = Scaf_pdg.Nodep.hot_loop_weights profiles in
  if loops = [] then Fmt.failwith "benchmark %S has no hot loops" name;
  let entries =
    List.concat_map
      (fun (lid, _) ->
        let before = Scaf_trace.Sink.root_count sink in
        let r =
          Scaf_pdg.Pdg.run_loop prog
            ~resolver:resolver.Scaf_pdg.Schemes.resolve lid
        in
        let roots =
          List.filteri
            (fun i _ -> i >= before)
            (Scaf_trace.Sink.roots sink)
        in
        List.mapi
          (fun i (qr : Scaf_pdg.Pdg.qresult) ->
            (Printf.sprintf "%s#%d" lid i, qr, List.nth_opt roots i))
          r.Scaf_pdg.Pdg.queries)
      loops
  in
  let print_entry (qid, (qr : Scaf_pdg.Pdg.qresult), root) =
    Fmt.pr "query %s%s@." qid (if qr.Scaf_pdg.Pdg.nodep then "  [nodep]" else "");
    match root with
    | Some n -> Fmt.pr "%s@." (Scaf_trace.Sink.tree_to_string n)
    | None -> Fmt.pr "  (no derivation tree collected)@."
  in
  match query_sel with
  | Some sel -> (
      let found =
        match int_of_string_opt sel with
        | Some i -> List.nth_opt entries i
        | None ->
            List.find_opt (fun (qid, _, _) -> String.equal qid sel) entries
      in
      match found with
      | Some e -> print_entry e
      | None ->
          Fmt.failwith
            "unknown query %S (use \"<loop>#<index>\" or a global index; \
             %s has %d queries — run without QUERY for the list)"
            sel name (List.length entries))
  | None ->
      Fmt.pr "%s: %d hot loops, %d PDG queries@." name (List.length loops)
        (List.length entries);
      List.iter
        (fun (qid, (qr : Scaf_pdg.Pdg.qresult), _) ->
          Fmt.pr "  %-24s %a%s@." qid Scaf.Aresult.pp
            qr.Scaf_pdg.Pdg.resp.Scaf.Response.result
            (if qr.Scaf_pdg.Pdg.nodep then "  [nodep]" else ""))
        entries;
      (* the full tree of the first disproven dependence — the interesting
         kind — or of the first query when nothing was disproven *)
      let pick =
        match
          List.find_opt (fun (_, qr, _) -> qr.Scaf_pdg.Pdg.nodep) entries
        with
        | Some e -> Some e
        | None -> (match entries with e :: _ -> Some e | [] -> None)
      in
      (match pick with
      | Some e ->
          Fmt.pr "@.";
          print_entry e
      | None -> ())

let run_bench name =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  let e = Experiments.evaluate_bench b in
  Fmt.pr "%s — %s@.@." (Scaf_suite.Program.id b) (Scaf_suite.Program.descr b);
  Fmt.pr "hot loops:@.";
  List.iter
    (fun (lid, w) ->
      let pct r =
        match List.assoc_opt lid r.Scaf_pdg.Nodep.per_loop with
        | Some lr -> Scaf_pdg.Pdg.nodep_pct lr
        | None -> 0.0
      in
      Fmt.pr
        "  %-28s weight %.2f  CAF %5.1f  Confl %5.1f  SCAF %5.1f  MemSpec \
         %5.1f@."
        lid w (pct e.Experiments.caf)
        (pct e.Experiments.confluence)
        (pct e.Experiments.scaf)
        (pct e.Experiments.memspec))
    e.Experiments.scaf.Scaf_pdg.Nodep.loops

let run_speculate name =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  let m = Scaf_suite.Program.program b in
  let profiles = Scaf_suite.Program.profiles b in
  let plan, instrumented = Scaf_transform.Apply.speculate profiles in
  Fmt.pr "%a@." Scaf_transform.Plan.pp plan;
  let outcome_train =
    Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
      ~input:(List.hd (Scaf_suite.Program.train_inputs b))
      ()
  in
  (match outcome_train.Scaf_transform.Apply.misspec_tag with
  | Some tag -> (
      Fmt.pr "train misspec tag %Ld@." tag;
      match List.nth_opt plan.Scaf_transform.Plan.selected (Int64.to_int tag - 1) with
      | Some a -> Fmt.pr "  -> %a@." Scaf.Assertion.pp a
      | None -> ())
  | None -> ());
  Fmt.pr "train input: misspeculated=%b, output matches original=%b@."
    outcome_train.Scaf_transform.Apply.misspeculated
    (outcome_train.Scaf_transform.Apply.result.Scaf_interp.Eval.output
    = (Scaf_interp.Eval.run
         ~input:(List.hd (Scaf_suite.Program.train_inputs b))
         m)
        .Scaf_interp.Eval.output);
  let outcome_ref =
    Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
      ~input:(Scaf_suite.Program.ref_input b) ()
  in
  Fmt.pr "ref input:   misspeculated=%b, output matches original=%b@."
    outcome_ref.Scaf_transform.Apply.misspeculated
    (outcome_ref.Scaf_transform.Apply.result.Scaf_interp.Eval.output
    = (Scaf_interp.Eval.run ~input:(Scaf_suite.Program.ref_input b) m)
        .Scaf_interp.Eval.output)

(* ------------------------------------------------------------------ *)
(* watch: edit / invalidate / re-answer loop                           *)
(* ------------------------------------------------------------------ *)

(* Drive the incremental re-analysis engine on one benchmark: answer the
   full PDG workload cold, then [edits] times apply the scripted
   single-loop edit, run the invalidation pass, re-answer, and check the
   surviving answers differentially against a from-scratch batch session
   over the same (edited) program. Exits non-zero on any differential
   mismatch or failed edit. *)
let run_watch name edits =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  let module Session = Scaf_incremental.Session in
  let s = Session.create b in
  let qs = Session.workload s in
  Fmt.pr "%s @@ epoch %d: %d hot-loop queries@." name (Session.epoch s)
    (List.length qs);
  List.iter (fun q -> ignore (Session.ask s q)) qs;
  let c = Session.counters s in
  Fmt.pr "cold run: computed %d/%d@." c.Session.recomputed c.Session.asked;
  let ok = ref true in
  for i = 1 to edits do
    let op = Session.auto_edit s in
    Fmt.pr "@.edit %d: %a@." i Scaf_suite.Edit.pp_op op;
    match Session.edit s [ op ] with
    | Error e ->
        List.iter (fun d -> Fmt.epr "%a@." Scaf_lint.Diagnostic.pp d) e;
        ok := false
    | Ok (diff, stats) ->
        Fmt.pr "  %a@." Scaf_suite.Edit.pp_diff diff;
        Fmt.pr "  invalidation: %a@." Scaf_incremental.Invalidate.pp_stats
          stats;
        Session.reset_counters s;
        let qs = Session.workload s in
        let answers = Session.render_answers s qs in
        let c = Session.counters s in
        Fmt.pr "  re-answered %d/%d (%.1f%%)@." c.Session.recomputed
          c.Session.asked
          (100.0
          *. float_of_int c.Session.recomputed
          /. float_of_int (max 1 c.Session.asked));
        let base = Session.baseline s in
        let batch = Session.render_answers base (Session.workload base) in
        let same = String.equal answers batch in
        Fmt.pr "  differential vs batch: %s@."
          (if same then "byte-identical" else "MISMATCH");
        if not same then ok := false
  done;
  if not !ok then exit 1

let run_audit c json_out =
  (* the audit is sequential by construction; [c.jobs]/[c.cache_stats] do
     not apply, the observability flags do *)
  let benchmarks = select_benchmarks c.benchmarks in
  let trace = sink_of c in
  let metrics = metrics_of c in
  let r = Scaf_audit.Audit.run ?trace ?metrics ~benchmarks () in
  print_string (Scaf_audit.Audit.render r);
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Scaf_audit.Audit.to_json r);
      output_char oc '\n';
      close_out oc
  | None -> ());
  emit_observability c trace;
  if Scaf_audit.Audit.exit_code r <> 0 then exit 1

(* ------------------------------------------------------------------ *)
(* lint: the static-analysis gate, offline                             *)
(* ------------------------------------------------------------------ *)

let read_file (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Lint one target — a suite benchmark name or a path to an MIR file —
   into a diagnostic list (a parse failure is itself a diagnostic, so the
   output shape is uniform). *)
let lint_target (target : string) : Scaf_lint.Diagnostic.t list =
  match Scaf_suite.Registry.find target with
  | Some b -> (Scaf_suite.Program.lint b).Scaf_lint.Pass.diagnostics
  | None ->
      if not (Sys.file_exists target) then
        Fmt.failwith "unknown benchmark or file %S" target
      else (
        match Scaf_ir.Parser.parse_exn_msg (read_file target) with
        | exception Failure msg ->
            [
              Scaf_lint.Diagnostic.error ~code:"parse.error" ~pass:"parse"
                "%s" msg;
            ]
        | m -> (Scaf_lint.Pass.run m).Scaf_lint.Pass.diagnostics)

let run_lint targets all json =
  let targets =
    if all then
      List.map Scaf_suite.Program.id (Scaf_suite.Registry.all ()) @ targets
    else targets
  in
  if targets = [] then
    Fmt.failwith "nothing to lint: name benchmarks or files, or pass --all";
  let results = List.map (fun t -> (t, lint_target t)) targets in
  (if json then
     let open Scaf_server in
     print_endline
       (Json.to_string
          (Json.List
             (List.map
                (fun (t, ds) ->
                  Json.Obj
                    [
                      ("target", Json.String t);
                      ( "errors",
                        Json.Int (List.length (Scaf_lint.Diagnostic.errors ds))
                      );
                      ( "diagnostics",
                        Json.List (List.map Protocol.diagnostic_to_json ds) );
                    ])
                results)))
   else
     List.iter
       (fun (t, ds) ->
         let errs = List.length (Scaf_lint.Diagnostic.errors ds) in
         Fmt.pr "%s: %d diagnostic(s), %d error(s)@." t (List.length ds) errs;
         List.iter (fun d -> Fmt.pr "  %a@." Scaf_lint.Diagnostic.pp d) ds)
       results);
  if List.exists (fun (_, ds) -> Scaf_lint.Diagnostic.errors ds <> []) results
  then exit 1

(* ------------------------------------------------------------------ *)
(* eval-file: canonical answers for a user program, in-process         *)
(* ------------------------------------------------------------------ *)

let default_max_submit = 200_000

(* One canonical line per PDG query of every hot loop, rendered with
   [Protocol.render_answer] — the same function `ask replay` uses, so a
   daemon replay of the same submitted program is byte-identical to this
   local evaluation. The program goes through [Engine.submit], i.e.
   exactly the daemon's lint gate. *)
let run_eval_file file ident =
  let open Scaf_server in
  let id =
    match ident with
    | Some i -> i
    | None -> Filename.remove_extension (Filename.basename file)
  in
  let eng = Engine.create ~benchmarks:[] () in
  match
    Engine.submit eng ~max_est_queries:default_max_submit
      {
        Protocol.wp_id = id;
        wp_source = read_file file;
        wp_train = None;
        wp_ref = None;
      }
  with
  | Error e ->
      Fmt.epr "rejected [%s]: %s@." e.Protocol.code e.Protocol.msg;
      List.iter
        (fun d -> Fmt.epr "  %a@." Scaf_lint.Diagnostic.pp d)
        e.Protocol.diags;
      exit 1
  | Ok (_report, b) ->
      let w = Engine.worker eng in
      let prog = Scaf_suite.Program.ctx b.Engine.program in
      List.iter
        (fun (lid, _weight) ->
          List.iteri
            (fun i (dq : Scaf_pdg.Pdg.dep_query) ->
              let wq =
                {
                  Protocol.wloop = lid;
                  wsrc = dq.Scaf_pdg.Pdg.src;
                  wdst = dq.Scaf_pdg.Pdg.dst;
                  wcross = dq.Scaf_pdg.Pdg.cross;
                }
              in
              let a =
                Engine.answer w ~degrade:Admission.Full ~deadline:None b wq
              in
              Fmt.pr "%s#%d %s@." lid i (Protocol.render_answer a))
            (Scaf_pdg.Pdg.queries_of_loop prog lid))
        (Engine.bench_loops b)

(* ------------------------------------------------------------------ *)
(* serve / ask: the query daemon and its client                        *)
(* ------------------------------------------------------------------ *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "scaf-eval.sock"

let run_serve benchmarks socket tcp state_dir workers jobs capacity
    idle_timeout deadline_ms static_nodep max_submit =
  let open Scaf_server in
  let base = Daemon.default_config ~socket_path:socket () in
  let cfg =
    {
      base with
      Daemon.benchmarks = select_benchmarks benchmarks;
      tcp;
      state_dir;
      workers;
      jobs;
      admission = { base.Daemon.admission with Admission.capacity };
      idle_timeout;
      default_deadline_ms = deadline_ms;
      static_nodep;
      max_submit_queries = max_submit;
    }
  in
  let t = Daemon.start cfg in
  Printf.eprintf "scaf-eval: serving %d benchmark(s) on %s%s\n%!"
    (List.length cfg.Daemon.benchmarks)
    (String.concat " and " (Daemon.endpoints t))
    (match state_dir with
    | Some d -> Printf.sprintf " (journal in %s)" d
    | None -> "");
  Daemon.wait t

(* Uncaught client failures become actionable messages instead of
   backtraces — in particular a protocol [version_mismatch] from a daemon
   built at a different revision tells the user exactly what to do. *)
let with_client socket (f : Scaf_server.Client.t -> string list -> unit) =
  let open Scaf_server in
  match
    let c, benches = Client.connect ~name:"scaf-eval" socket in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c benches)
  with
  | () -> ()
  | exception Client.Server_error e ->
      Fmt.epr "daemon rejected the request [%s]: %s@." e.Protocol.code
        e.Protocol.msg;
      exit 1
  | exception Client.Transport_error msg ->
      Fmt.epr "cannot talk to a daemon at %s: %s@." socket msg;
      exit 1

(* [ask fig8] renders the daemon's per-benchmark rows with exactly the
   batch code path, so a full-suite daemon replay is byte-identical to
   [scaf_eval fig8]. *)
let run_ask what socket bench loop src dst cross deadline_ms file ident
    stream =
  let open Scaf_server in
  match what with
  | "fig8" ->
      with_client socket (fun c benches ->
          let rows = List.map (fun b -> Client.report c ~bench:b) benches in
          print_endline
            "Figure 8 — dependence coverage (%NoDep, time-weighted):";
          print_endline (Experiments.fig8_of_rows rows);
          print_endline (Experiments.fig8_deltas_of_rows rows))
  | "ping" ->
      with_client socket (fun c _ ->
          Client.ping c;
          print_endline "pong")
  | "stats" ->
      with_client socket (fun c _ ->
          print_endline (Json.to_string (Client.stats c)))
  | "shutdown" -> with_client socket (fun c _ -> Client.shutdown c)
  | "query" ->
      let bench =
        match bench with
        | Some b -> b
        | None -> Fmt.failwith "ask query needs --bench"
      in
      let loop =
        match loop with
        | Some l -> l
        | None -> Fmt.failwith "ask query needs --loop"
      in
      with_client socket (fun c _ ->
          let a =
            Client.ask ?deadline_ms c ~bench
              { Protocol.wloop = loop; wsrc = src; wdst = dst; wcross = cross }
          in
          Fmt.pr "%s%s  cost %.2f  options %d  provenance %s%s@."
            a.Protocol.a_result
            (if a.Protocol.a_nodep then "  [nodep]" else "")
            a.Protocol.a_cost a.Protocol.a_options
            (String.concat "," a.Protocol.a_provenance)
            (match a.Protocol.a_degraded with
            | Some tag -> "  [degraded: " ^ tag ^ "]"
            | None -> ""))
  | "submit" -> (
      let file =
        match file with
        | Some f -> f
        | None -> Fmt.failwith "ask submit needs --file"
      in
      let id =
        match ident with
        | Some i -> i
        | None -> Filename.remove_extension (Filename.basename file)
      in
      with_client socket (fun c _ ->
          match
            Client.submit c
              {
                Protocol.wp_id = id;
                wp_source = read_file file;
                wp_train = None;
                wp_ref = None;
              }
          with
          | r ->
              Fmt.pr
                "submitted %s: ~%d dependence queries over %d hot loop(s), \
                 %d warning(s)@."
                r.Protocol.s_id r.Protocol.s_est_queries
                (List.length r.Protocol.s_loops)
                r.Protocol.s_warnings
          | exception Client.Server_error e ->
              Fmt.epr "rejected [%s]: %s@." e.Protocol.code e.Protocol.msg;
              List.iter
                (fun d -> Fmt.epr "  %a@." Scaf_lint.Diagnostic.pp d)
                e.Protocol.diags;
              exit 1))
  | "replay" ->
      (* the canonical-line twin of [eval-file]: fetch the benchmark's
         workload and ask it query by query over the wire *)
      let bench =
        match bench with
        | Some b -> b
        | None -> Fmt.failwith "ask replay needs --bench"
      in
      with_client socket (fun c _ ->
          let workload = Client.queries c ~bench in
          if stream then begin
            (* one streamed ask_many over the whole workload; the
               reassembled answers render byte-identically to the
               query-by-query replay below *)
            let labeled =
              List.concat_map
                (fun (lid, _w, qs) -> List.mapi (fun i q -> (lid, i, q)) qs)
                workload
            in
            let answers =
              Client.ask_many ~stream:true ?deadline_ms c ~bench
                (List.map (fun (_, _, q) -> q) labeled)
            in
            List.iter2
              (fun (lid, i, _) a ->
                Fmt.pr "%s#%d %s@." lid i (Protocol.render_answer a))
              labeled answers
          end
          else
            List.iter
              (fun (lid, _weight, qs) ->
                List.iteri
                  (fun i q ->
                    let a = Client.ask ?deadline_ms c ~bench q in
                    Fmt.pr "%s#%d %s@." lid i (Protocol.render_answer a))
                  qs)
              workload)
  | other -> Fmt.failwith "unknown ask request %S" other

(* The network chaos matrix, standalone: the CI net-gate's teeth. *)
let run_netchaos seed =
  let open Scaf_faultinject in
  print_endline
    "Network chaos — every scenario answered, rejected, or expired:";
  let outcomes = Net_chaos.run_net_chaos ~seed () in
  print_endline
    (Report.table
       ~header:[ "scenario"; "ok"; "detail" ]
       ~rows:
         (List.map
            (fun (s : Server_chaos.server_outcome) ->
              [
                s.Server_chaos.s_scenario;
                (if s.Server_chaos.s_ok then "yes" else "NO");
                s.Server_chaos.s_detail;
              ])
            outcomes));
  let bad =
    List.filter
      (fun (s : Server_chaos.server_outcome) -> not s.Server_chaos.s_ok)
      outcomes
  in
  Fmt.pr "%d network scenarios, %d ok, %d FAILED@."
    (List.length outcomes)
    (List.length outcomes - List.length bad)
    (List.length bad);
  if bad <> [] then exit 1

let run_resilience seed =
  let open Scaf_faultinject in
  print_endline "Recovery scenarios — every run must commit or recover:";
  let outcomes = Harness.run_all ~seed () in
  print_endline
    (Report.table
       ~header:
         [ "scenario"; "ok"; "misspec"; "rollbacks"; "replans"; "degraded"; "detail" ]
       ~rows:
         (List.map
            (fun (r : Harness.outcome) ->
              [
                r.Harness.scenario;
                (if r.Harness.ok then "yes" else "NO");
                (if r.Harness.misspeculated then "yes" else "-");
                string_of_int r.Harness.rollbacks;
                string_of_int r.Harness.replans;
                (if r.Harness.degraded then "yes" else "-");
                r.Harness.detail;
              ])
            outcomes));
  let bad = List.filter (fun (r : Harness.outcome) -> not r.Harness.ok) outcomes in
  Fmt.pr "%d scenarios, %d recovered/committed, %d WRONG@.@."
    (List.length outcomes)
    (List.length outcomes - List.length bad)
    (List.length bad);
  print_endline "Orchestrator chaos — no module failure may abort a query:";
  let chaos =
    [
      Harness.run_chaos ~seed ~p_raise:0.3 "052.alvinn";
      Harness.run_chaos ~seed ~p_delay:0.3 ~module_budget:10.0 "052.alvinn";
      Harness.run_chaos ~seed ~p_raise:0.2 ~p_delay:0.2 ~p_corrupt:0.2
        ~module_budget:10.0 "164.gzip";
    ]
  in
  print_endline
    (Report.table
       ~header:
         [ "scenario"; "queries"; "answered"; "faults"; "overruns"; "quarantined" ]
       ~rows:
         (List.map
            (fun (c : Harness.chaos_outcome) ->
              [
                c.Harness.c_scenario;
                string_of_int c.Harness.c_queries;
                string_of_int c.Harness.c_answered;
                string_of_int c.Harness.c_faults;
                string_of_int c.Harness.c_overruns;
                String.concat "," c.Harness.c_quarantined;
              ])
            chaos));
  print_endline
    "Server chaos — every request answered, rejected, or expired:";
  let server = Server_chaos.run_server_chaos ~seed () in
  print_endline
    (Report.table
       ~header:[ "scenario"; "ok"; "detail" ]
       ~rows:
         (List.map
            (fun (s : Server_chaos.server_outcome) ->
              [
                s.Server_chaos.s_scenario;
                (if s.Server_chaos.s_ok then "yes" else "NO");
                s.Server_chaos.s_detail;
              ])
            server));
  let server_bad =
    List.filter
      (fun (s : Server_chaos.server_outcome) -> not s.Server_chaos.s_ok)
      server
  in
  Fmt.pr "%d server scenarios, %d ok, %d FAILED@."
    (List.length server)
    (List.length server - List.length server_bad)
    (List.length server_bad);
  if bad <> [] || server_bad <> [] then exit 1

(* every evaluation subcommand shares the [common] flag set *)
let cmd_common name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ common_term)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let query_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:
          "Query to explain: \"<loop>#<index>\" or a global index. Omit to \
           list every query and explain the first disproven dependence.")

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "scaf-eval" ~version:"1.0.0"
      ~doc:"Reproduce the SCAF (PLDI 2020) evaluation"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v (Cmd.info "table1" ~doc:"Print Table 1") Term.(const run_table1 $ const ());
            cmd_common "fig8" "Figure 8: %NoDep per benchmark per scheme" run_fig8;
            cmd_common "fig9" "Figure 9: per-loop Confluence vs SCAF" run_fig9;
            cmd_common "table2" "Table 2: collaboration coverage" run_table2;
            cmd_common "fig10" "Figure 10: query latency CDF (sequential)" run_fig10;
            cmd_common "all" "Run the whole evaluation" run_all;
            Cmd.v
              (Cmd.info "bench" ~doc:"Per-benchmark detail")
              Term.(const run_bench $ name_arg);
            Cmd.v
              (Cmd.info "explain"
                 ~doc:
                   "Pretty-print the SCAF ensemble's full derivation tree \
                    for one PDG query of a benchmark: modules consulted, \
                    premise sub-queries at each depth, per-module answers, \
                    the join decision and the chosen assertion set.")
              Term.(const run_explain $ name_arg $ query_arg);
            Cmd.v
              (Cmd.info "speculate"
                 ~doc:"Plan, instrument and run one benchmark with recovery")
              Term.(const run_speculate $ name_arg);
            Cmd.v
              (Cmd.info "watch"
                 ~doc:
                   "Incremental re-analysis loop for one benchmark: answer \
                    the PDG workload, apply a scripted single-loop edit, \
                    invalidate only the transitively affected cache \
                    entries, re-answer, and verify the result \
                    byte-identical to a from-scratch batch run of the \
                    edited program.")
              Term.(
                const run_watch $ name_arg
                $ Arg.(
                    value & opt int 1
                    & info [ "edits" ] ~docv:"N"
                        ~doc:"Edit/invalidate/re-answer rounds to run."));
            Cmd.v
              (Cmd.info "audit"
                 ~doc:
                   "Audit the framework itself: cross-module contradictions, \
                    the dynamic-dependence oracle, and the query-plan lint. \
                    Exits non-zero on any soundness-class finding.")
              Term.(
                const run_audit $ common_term
                $ Arg.(
                    value
                    & opt (some string) None
                    & info [ "json" ] ~docv:"FILE"
                        ~doc:"Also write the machine-readable report to $(docv)."));
            (let socket_arg =
               Arg.(
                 value & opt string default_socket
                 & info [ "socket" ] ~docv:"PATH"
                     ~doc:"Unix-domain socket path for the query daemon.")
             in
             Cmd.v
               (Cmd.info "serve"
                  ~doc:
                    "Run the analysis-as-a-service daemon: load the \
                     benchmarks once, then answer PDG dependence queries \
                     over a Unix socket — and optionally TCP — with \
                     admission control, per-request deadlines, and graceful \
                     degradation under load. With $(b,--state-dir), accepted \
                     submissions are journaled to disk and replayed on \
                     restart, so a crash loses nothing.")
               Term.(
                 const run_serve $ bench_arg $ socket_arg
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "tcp" ] ~docv:"HOST:PORT"
                         ~doc:
                           "Also listen on this TCP endpoint (port 0 picks \
                            an ephemeral port, printed at startup). Both \
                            listeners share the same wire protocol, \
                            admission control, and sessions.")
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "state-dir" ] ~docv:"DIR"
                         ~doc:
                           "Durable state directory: accepted $(b,submit) \
                            and $(b,edit) operations are fsync'd to an \
                            append-only journal here and replayed through \
                            the admission pipeline on startup.")
                 $ Arg.(
                     value & opt int 2
                     & info [ "workers" ] ~docv:"N"
                         ~doc:"Worker threads answering admitted queries.")
                 $ Arg.(
                     value & opt int 1
                     & info [ "jobs" ] ~docv:"N"
                         ~doc:
                           "Domains in the engine's shared work-stealing \
                            pool, used for batched query resolution \
                            ($(b,ask_many), replays). Answers are \
                            byte-identical at any $(docv).")
                 $ Arg.(
                     value & opt int 64
                     & info [ "capacity" ] ~docv:"N"
                         ~doc:
                           "Admission-queue capacity; submissions beyond it \
                            are rejected with a retry-after hint.")
                 $ Arg.(
                     value & opt float 30.0
                     & info [ "idle-timeout" ] ~docv:"SECONDS"
                         ~doc:"Reap client sessions idle longer than this.")
                 $ Arg.(
                     value
                     & opt (some float) None
                     & info [ "deadline-ms" ] ~docv:"MS"
                         ~doc:
                           "Default per-query deadline applied when a \
                            request carries none.")
                 $ Arg.(
                     value & flag
                     & info [ "static-nodep" ]
                         ~doc:
                           "Answer provably-disjoint queries from the lint \
                            layer's static pass before consulting the \
                            orchestrator (answers are then not guaranteed \
                            byte-identical to batch).")
                 $ Arg.(
                     value & opt int 200_000
                     & info [ "max-submit-queries" ] ~docv:"N"
                         ~doc:
                           "Admission ceiling for $(b,submit): reject a \
                            program whose statically estimated dependence \
                            query count exceeds $(docv).")));
            (let socket_arg =
               Arg.(
                 value & opt string default_socket
                 & info [ "socket" ] ~docv:"ENDPOINT"
                     ~doc:
                       "Endpoint of a running daemon: a Unix-domain socket \
                        path, or $(b,tcp:HOST:PORT) for a TCP listener.")
             in
             Cmd.v
               (Cmd.info "ask"
                  ~doc:
                    "Query a running daemon: $(b,fig8) replays the whole \
                     Figure 8 evaluation through the wire (byte-identical \
                     to the batch command), $(b,query) asks one dependence \
                     query, $(b,submit) lint-gates and registers a user \
                     program from $(b,--file), $(b,replay) re-asks a \
                     benchmark's whole PDG workload (one canonical line \
                     per query, byte-comparable to $(b,eval-file)), \
                     $(b,stats) dumps daemon health, $(b,shutdown) stops \
                     the daemon.")
               Term.(
                 const run_ask
                 $ Arg.(
                     required
                     & pos 0 (some string) None
                     & info [] ~docv:"WHAT"
                         ~doc:
                           "One of: fig8, query, submit, replay, ping, \
                            stats, shutdown.")
                 $ socket_arg
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "b"; "bench" ] ~docv:"NAME"
                         ~doc:"Benchmark for $(b,query).")
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "loop" ] ~docv:"LOOP"
                         ~doc:"Hot loop for $(b,query).")
                 $ Arg.(
                     value & opt int 0
                     & info [ "src" ] ~docv:"N"
                         ~doc:"Source instruction index for $(b,query).")
                 $ Arg.(
                     value & opt int 0
                     & info [ "dst" ] ~docv:"N"
                         ~doc:"Destination instruction index for $(b,query).")
                 $ Arg.(
                     value & flag
                     & info [ "cross" ]
                         ~doc:"Ask the cross-iteration dependence.")
                 $ Arg.(
                     value
                     & opt (some float) None
                     & info [ "deadline-ms" ] ~docv:"MS"
                         ~doc:"Per-request deadline in milliseconds.")
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "file" ] ~docv:"FILE"
                         ~doc:"MIR source file for $(b,submit).")
                 $ Arg.(
                     value
                     & opt (some string) None
                     & info [ "id" ] ~docv:"NAME"
                         ~doc:
                           "Program id for $(b,submit) (default: the file \
                            name without extension).")
                 $ Arg.(
                     value & flag
                     & info [ "stream" ]
                         ~doc:
                           "For $(b,replay): stream the whole workload \
                            through one $(b,ask_many) request (incremental \
                            frames, reassembled client-side) instead of one \
                            request per query. Output is byte-identical.")));
            Cmd.v
              (Cmd.info "lint"
                 ~doc:
                   "Run the static-analysis framework over suite benchmarks \
                    and/or MIR files: well-formedness, SSA and loop checks, \
                    dead-code and memory-sanity lints, per-loop query-cost \
                    estimates. Exits non-zero if any target has errors.")
              Term.(
                const run_lint
                $ Arg.(
                    value & pos_all string []
                    & info [] ~docv:"TARGET"
                        ~doc:"Benchmark name or MIR file path (repeatable).")
                $ Arg.(
                    value & flag
                    & info [ "all" ] ~doc:"Lint every suite benchmark.")
                $ Arg.(
                    value & flag
                    & info [ "json" ]
                        ~doc:
                          "Machine-readable output: one JSON object per \
                           target with its diagnostics."));
            Cmd.v
              (Cmd.info "eval-file"
                 ~doc:
                   "Lint-gate a user MIR program (the daemon's submission \
                    gate, in-process) and answer its full PDG workload, one \
                    canonical line per query — byte-comparable to \
                    $(b,ask replay) of the same program submitted to a \
                    daemon.")
              Term.(
                const run_eval_file
                $ Arg.(
                    required
                    & pos 0 (some string) None
                    & info [] ~docv:"FILE" ~doc:"MIR source file.")
                $ Arg.(
                    value
                    & opt (some string) None
                    & info [ "id" ] ~docv:"NAME"
                        ~doc:
                          "Program id (default: the file name without \
                           extension)."));
            Cmd.v
              (Cmd.info "resilience"
                 ~doc:"Seeded fault-injection matrix: recovery + chaos")
              Term.(
                const run_resilience
                $ Arg.(
                    value & opt int 2026
                    & info [ "seed" ] ~docv:"SEED"
                        ~doc:"PRNG seed for the fault injector."));
            Cmd.v
              (Cmd.info "netchaos"
                 ~doc:
                   "Network chaos matrix: drive both daemon transports \
                    (Unix socket and TCP) through a byte-level fault proxy \
                    — latency, bandwidth caps, partial and duplicated \
                    writes, mid-frame truncation, RST, slow-loris — plus \
                    streaming cancellation and version-skew probes. Every \
                    scenario must end answered, rejected, or expired; exits \
                    non-zero on any hang or wrong answer.")
              Term.(
                const run_netchaos
                $ Arg.(
                    value & opt int 2026
                    & info [ "seed" ] ~docv:"SEED"
                        ~doc:"PRNG seed for the chaos matrix."));
          ]))
