(** scaf-eval: regenerate the paper's evaluation artifacts.

    Subcommands: [table1], [fig8], [fig9], [table2], [fig10], [all] (the
    whole evaluation), [bench NAME] (per-benchmark detail), [speculate
    NAME] (plan + instrument + run with recovery for one benchmark),
    [audit] (the framework self-audit: contradiction detection, dynamic
    oracle, query-plan lint — non-zero exit on soundness findings), and
    [resilience] (the seeded fault-injection matrix: recovery scenarios
    plus orchestrator chaos). *)

open Cmdliner
open Scaf_report

let clock () = Unix.gettimeofday ()

let select_benchmarks (names : string list) : Scaf_suite.Benchmark.t list =
  match names with
  | [] -> Scaf_suite.Registry.all
  | names ->
      List.map
        (fun n ->
          match Scaf_suite.Registry.find n with
          | Some b -> b
          | None -> Fmt.failwith "unknown benchmark %S" n)
        names

let bench_arg =
  Arg.(value & opt_all string [] & info [ "b"; "benchmark" ] ~docv:"NAME"
       ~doc:"Restrict to benchmark $(docv) (repeatable).")

let jobs_arg =
  Arg.(
    value
    & opt int (Scaf_pdg.Schemes.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the evaluation: each scheme's hot loops fan \
           out across $(docv) domains, one orchestrator per worker over a \
           shared canonicalizing cache. Tables are byte-identical for every \
           $(docv); 1 disables spawning. Defaults to the recommended domain \
           count.")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print per-scheme shared-cache counters (hits, canonical hits, \
           evictions) to stderr after the evaluation.")

let run_table1 () = print_endline Report.table1

let report_cache_stats evals =
  List.iter
    (fun (name, (s : Scaf.Qcache.stats)) ->
      let total = s.Scaf.Qcache.hits + s.Scaf.Qcache.misses in
      Printf.eprintf
        "cache %-12s lookups %8d  hit%% %5.1f  canonical-hits %6d  \
         evictions %6d  entries %6d\n"
        name total
        (if total = 0 then 0.0
         else 100.0 *. float_of_int s.Scaf.Qcache.hits /. float_of_int total)
        s.Scaf.Qcache.canonical_hits s.Scaf.Qcache.evictions
        s.Scaf.Qcache.entries)
    (Experiments.cache_stats_summary evals)

let with_evals ?(jobs = 1) ?(cache_stats = false) names f =
  let evals =
    Experiments.evaluate_all ~jobs ~benchmarks:(select_benchmarks names) ()
  in
  f evals;
  if cache_stats then report_cache_stats evals

let run_fig8 names jobs cache_stats =
  with_evals ~jobs ~cache_stats names (fun evals ->
      print_endline "Figure 8 — dependence coverage (%NoDep, time-weighted):";
      print_endline (Experiments.fig8 evals);
      print_endline (Experiments.fig8_deltas evals))

let run_fig9 names jobs cache_stats =
  with_evals ~jobs ~cache_stats names (fun evals ->
      print_endline "Figure 9 — per-hot-loop Confluence vs SCAF:";
      print_endline (Experiments.fig9 evals))

let run_table2 names jobs cache_stats =
  with_evals ~jobs ~cache_stats names (fun evals ->
      print_endline "Table 2 — collaboration coverage:";
      print_endline (Experiments.table2 evals))

let run_fig10 names =
  (* latency CDFs need one resolver per scheme timing every query — the
     measurement itself must stay sequential *)
  with_evals names (fun evals ->
      print_endline "Figure 10 — query latency CDF:";
      print_endline (Experiments.fig10 ~clock evals))

let run_all names jobs cache_stats =
  with_evals ~jobs ~cache_stats names (fun evals ->
      print_endline "Table 1 — integration approaches:";
      print_endline Report.table1;
      print_endline "";
      print_endline "Figure 8 — dependence coverage (%NoDep, time-weighted):";
      print_endline (Experiments.fig8 evals);
      print_endline (Experiments.fig8_deltas evals);
      print_endline "";
      print_endline "Figure 9 — per-hot-loop Confluence vs SCAF:";
      print_endline (Experiments.fig9 evals);
      print_endline "Table 2 — collaboration coverage:";
      print_endline (Experiments.table2 evals);
      print_endline "Figure 10 — query latency CDF:";
      print_endline (Experiments.fig10 ~clock evals))

let run_bench name =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  let e = Experiments.evaluate_bench b in
  Fmt.pr "%s — %s@.@." b.Scaf_suite.Benchmark.name b.Scaf_suite.Benchmark.descr;
  Fmt.pr "hot loops:@.";
  List.iter
    (fun (lid, w) ->
      let pct r =
        match List.assoc_opt lid r.Scaf_pdg.Nodep.per_loop with
        | Some lr -> Scaf_pdg.Pdg.nodep_pct lr
        | None -> 0.0
      in
      Fmt.pr
        "  %-28s weight %.2f  CAF %5.1f  Confl %5.1f  SCAF %5.1f  MemSpec \
         %5.1f@."
        lid w (pct e.Experiments.caf)
        (pct e.Experiments.confluence)
        (pct e.Experiments.scaf)
        (pct e.Experiments.memspec))
    e.Experiments.scaf.Scaf_pdg.Nodep.loops

let run_speculate name =
  let b =
    match Scaf_suite.Registry.find name with
    | Some b -> b
    | None -> Fmt.failwith "unknown benchmark %S" name
  in
  let m = Scaf_suite.Benchmark.program b in
  let profiles =
    Scaf_profile.Profiler.profile_module
      ~inputs:b.Scaf_suite.Benchmark.train_inputs m
  in
  let plan, instrumented = Scaf_transform.Apply.speculate profiles in
  Fmt.pr "%a@." Scaf_transform.Plan.pp plan;
  let outcome_train =
    Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
      ~input:(List.hd b.Scaf_suite.Benchmark.train_inputs)
      ()
  in
  (match outcome_train.Scaf_transform.Apply.misspec_tag with
  | Some tag -> (
      Fmt.pr "train misspec tag %Ld@." tag;
      match List.nth_opt plan.Scaf_transform.Plan.selected (Int64.to_int tag - 1) with
      | Some a -> Fmt.pr "  -> %a@." Scaf.Assertion.pp a
      | None -> ())
  | None -> ());
  Fmt.pr "train input: misspeculated=%b, output matches original=%b@."
    outcome_train.Scaf_transform.Apply.misspeculated
    (outcome_train.Scaf_transform.Apply.result.Scaf_interp.Eval.output
    = (Scaf_interp.Eval.run ~input:(List.hd b.Scaf_suite.Benchmark.train_inputs) m)
        .Scaf_interp.Eval.output);
  let outcome_ref =
    Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
      ~input:b.Scaf_suite.Benchmark.ref_input ()
  in
  Fmt.pr "ref input:   misspeculated=%b, output matches original=%b@."
    outcome_ref.Scaf_transform.Apply.misspeculated
    (outcome_ref.Scaf_transform.Apply.result.Scaf_interp.Eval.output
    = (Scaf_interp.Eval.run ~input:b.Scaf_suite.Benchmark.ref_input m)
        .Scaf_interp.Eval.output)

let run_audit names json_out =
  let benchmarks = select_benchmarks names in
  let r = Scaf_audit.Audit.run ~benchmarks () in
  print_string (Scaf_audit.Audit.render r);
  (match json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Scaf_audit.Audit.to_json r);
      output_char oc '\n';
      close_out oc
  | None -> ());
  if Scaf_audit.Audit.exit_code r <> 0 then exit 1

let run_resilience seed =
  let open Scaf_faultinject in
  print_endline "Recovery scenarios — every run must commit or recover:";
  let outcomes = Harness.run_all ~seed () in
  print_endline
    (Report.table
       ~header:
         [ "scenario"; "ok"; "misspec"; "rollbacks"; "replans"; "degraded"; "detail" ]
       ~rows:
         (List.map
            (fun (r : Harness.outcome) ->
              [
                r.Harness.scenario;
                (if r.Harness.ok then "yes" else "NO");
                (if r.Harness.misspeculated then "yes" else "-");
                string_of_int r.Harness.rollbacks;
                string_of_int r.Harness.replans;
                (if r.Harness.degraded then "yes" else "-");
                r.Harness.detail;
              ])
            outcomes));
  let bad = List.filter (fun (r : Harness.outcome) -> not r.Harness.ok) outcomes in
  Fmt.pr "%d scenarios, %d recovered/committed, %d WRONG@.@."
    (List.length outcomes)
    (List.length outcomes - List.length bad)
    (List.length bad);
  print_endline "Orchestrator chaos — no module failure may abort a query:";
  let chaos =
    [
      Harness.run_chaos ~seed ~p_raise:0.3 "052.alvinn";
      Harness.run_chaos ~seed ~p_delay:0.3 ~module_budget:10.0 "052.alvinn";
      Harness.run_chaos ~seed ~p_raise:0.2 ~p_delay:0.2 ~p_corrupt:0.2
        ~module_budget:10.0 "164.gzip";
    ]
  in
  print_endline
    (Report.table
       ~header:
         [ "scenario"; "queries"; "answered"; "faults"; "overruns"; "quarantined" ]
       ~rows:
         (List.map
            (fun (c : Harness.chaos_outcome) ->
              [
                c.Harness.c_scenario;
                string_of_int c.Harness.c_queries;
                string_of_int c.Harness.c_answered;
                string_of_int c.Harness.c_faults;
                string_of_int c.Harness.c_overruns;
                String.concat "," c.Harness.c_quarantined;
              ])
            chaos));
  if bad <> [] then exit 1

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ bench_arg)

let cmd_jobs name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ bench_arg $ jobs_arg $ cache_stats_arg)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "scaf-eval" ~version:"1.0.0"
      ~doc:"Reproduce the SCAF (PLDI 2020) evaluation"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v (Cmd.info "table1" ~doc:"Print Table 1") Term.(const run_table1 $ const ());
            cmd_jobs "fig8" "Figure 8: %NoDep per benchmark per scheme" run_fig8;
            cmd_jobs "fig9" "Figure 9: per-loop Confluence vs SCAF" run_fig9;
            cmd_jobs "table2" "Table 2: collaboration coverage" run_table2;
            cmd "fig10" "Figure 10: query latency CDF" run_fig10;
            cmd_jobs "all" "Run the whole evaluation" run_all;
            Cmd.v
              (Cmd.info "bench" ~doc:"Per-benchmark detail")
              Term.(const run_bench $ name_arg);
            Cmd.v
              (Cmd.info "speculate"
                 ~doc:"Plan, instrument and run one benchmark with recovery")
              Term.(const run_speculate $ name_arg);
            Cmd.v
              (Cmd.info "audit"
                 ~doc:
                   "Audit the framework itself: cross-module contradictions, \
                    the dynamic-dependence oracle, and the query-plan lint. \
                    Exits non-zero on any soundness-class finding.")
              Term.(
                const run_audit $ bench_arg
                $ Arg.(
                    value
                    & opt (some string) None
                    & info [ "json" ] ~docv:"FILE"
                        ~doc:"Also write the machine-readable report to $(docv)."));
            Cmd.v
              (Cmd.info "resilience"
                 ~doc:"Seeded fault-injection matrix: recovery + chaos")
              Term.(
                const run_resilience
                $ Arg.(
                    value & opt int 2026
                    & info [ "seed" ] ~docv:"SEED"
                        ~doc:"PRNG seed for the fault injector."));
          ]))
