(** Microbenchmarks (Bechamel).

    - [validation/*] — Figure 7: per-invocation cost of every SCAF
      validation primitive vs. the shadow-memory memory-speculation check.
    - [query/*] — per-scheme dependence-query cost on the motivating
      example (one full PDG hot-loop sweep per run, fresh orchestrator).
    - [ablation/*] — the design choices DESIGN.md §7 calls out: the
      desired-result parameter, join policy, bail-out policy, module order
      and premise depth (plus a precision table printed after the timings).
    - [cache/*] — the two-tier response cache: shared-store hit, miss,
      canonical (mirrored-alias) hit, insert-with-eviction, shared-cache
      contention at 1/2/4 domains, and the L1 tier ([cache/l1-*]): the
      unsynchronized warm hit, the shared pull through an L1 front, and
      the amortized publication batch.
    - [parallel/*] — the work-stealing batched query engine: one full
      429.mcf hot-loop sweep under SCAF at jobs 1/2/4 (shared cache, one
      resolver per worker), the same sweep on a persistent pool, and a
      steal-heavy imbalanced workload ([parallel/steal-*]).
    - [substrate/*] — parser, dominator tree, loop detection, interpreter
      and profiler throughput.
    - [resilience/*] — checkpoint/journal overhead: an uninstrumented run
      vs. checkpoints-only vs. a forced rollback+replay, plus one chaos
      sweep with the whole ensemble raising behind the circuit breaker.
    - [trace/*] — the observability layer: the same SCAF sweep with the
      no-op sink, an enabled-but-sampled-out sink, a collect-everything
      sink, and a metrics registry attached.
    - [incremental/*] — the incremental re-analysis engine: a warm
      full-workload sweep (all cache hits), one edit/invalidate
      round-trip, and edit + full re-answer.

    Run with: dune exec bench/main.exe [-- GROUP...] — group names select
    a subset. [--json FILE] additionally writes every estimate as a flat
    JSON snapshot (the committed BENCH_*.json baselines;
    ci/compare_bench.py diffs a fresh run against one). The special
    argument [trace-gate] instead runs the CI regression gate: the
    enabled-but-sampled-out hot path must stay within tolerance of the
    no-op-sink baseline (non-zero exit otherwise); [incremental-gate]
    runs the incremental-engine gate: on every fig8 benchmark the
    scripted single-loop edit must re-answer <20%% of the workload and
    stay byte-identical to the batch run; [scale-gate] runs the multicore
    scaling gate: the fig8 and fig10 fan-outs at [--jobs 4] must be at
    least 2x faster than at [--jobs 1] (skipped with exit 0 on machines
    with fewer than 4 cores). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let motivating_src =
  {|
global @a 8
global @b 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %r = call @input(0)
  %c = icmp ne %r, 0
  condbr %c, rare, common
rare:
  store 8, @b, 7
  br cont
common:
  store 8, @a, %i
  br cont
cont:
  %v = load 8, @a
  %w = load 8, @b
  %s = add %v, %w
  store 8, @b, %s
  br latch
latch:
  %i2 = add %i, 1
  store 8, @a, %i2
  %d = icmp slt %i2, 200
  condbr %d, loop, exit
exit:
  ret
}
|}

let motivating = Scaf_ir.Parser.parse_exn_msg motivating_src

let suite_bench =
  Scaf_suite.Program.program (Option.get (Scaf_suite.Registry.find "181.mcf"))

let profiles = lazy (Scaf_profile.Profiler.profile_module motivating)

let mcf_profiles =
  lazy (Scaf_profile.Profiler.profile_module ~inputs:[ [| 0L |] ] suite_bench)

(* ------------------------------------------------------------------ *)
(* validation/* — Figure 7                                             *)
(* ------------------------------------------------------------------ *)

let validation_tests =
  let mem = Scaf_interp.Memory.create () in
  let rt = Scaf_interp.Runtime.create mem in
  let o =
    Scaf_interp.Memory.alloc mem ~size:64 ~kind:(Scaf_interp.Memory.KHeap 0)
      ~ctx:[]
  in
  let addr = o.Scaf_interp.Memory.base in
  Scaf_interp.Runtime.set_heap rt ~addr ~heap_tag:1;
  Scaf_interp.Runtime.ms_write rt ~addr ~size:8 ~group:7L ~tag:0L;
  [
    Test.make ~name:"validation/residue-check"
      (Staged.stage (fun () ->
           Scaf_interp.Runtime.check_residue rt ~addr ~allowed:1L ~tag:0L));
    Test.make ~name:"validation/heap-check"
      (Staged.stage (fun () ->
           Scaf_interp.Runtime.check_heap rt ~addr ~heap_tag:1 ~tag:0L));
    Test.make ~name:"validation/value-check"
      (Staged.stage (fun () ->
           Scaf_interp.Runtime.check_value rt ~value:5L ~predicted:5L ~tag:0L));
    Test.make ~name:"validation/iter-check"
      (Staged.stage (fun () ->
           Scaf_interp.Runtime.iter_check rt ~heap_tag:99 ~tag:0L));
    Test.make ~name:"validation/memspec-write+read"
      (Staged.stage (fun () ->
           Scaf_interp.Runtime.ms_write rt ~addr ~size:8 ~group:7L ~tag:0L;
           Scaf_interp.Runtime.ms_read rt ~addr ~size:8 ~group:7L ~tag:0L));
  ]

(* ------------------------------------------------------------------ *)
(* query/* — one hot-loop PDG sweep per scheme                         *)
(* ------------------------------------------------------------------ *)

let sweep (mk : Scaf_profile.Profiles.t -> Scaf_pdg.Schemes.resolver) () =
  let p = Lazy.force profiles in
  let r = mk p in
  ignore
    (Scaf_pdg.Pdg.run_loop p.Scaf_profile.Profiles.ctx
       ~resolver:r.Scaf_pdg.Schemes.resolve "main:loop")

let query_tests =
  [
    Test.make ~name:"query/caf-sweep" (Staged.stage (sweep Scaf_pdg.Schemes.caf));
    Test.make ~name:"query/confluence-sweep"
      (Staged.stage (sweep Scaf_pdg.Schemes.confluence));
    Test.make ~name:"query/scaf-sweep"
      (Staged.stage (sweep Scaf_pdg.Schemes.scaf));
  ]

(* ------------------------------------------------------------------ *)
(* ablation/*                                                          *)
(* ------------------------------------------------------------------ *)

let orchestrator_with (p : Scaf_profile.Profiles.t)
    (f : Scaf.Orchestrator.config -> Scaf.Orchestrator.config) :
    Scaf.Orchestrator.t =
  let prog = p.Scaf_profile.Profiles.ctx in
  let modules =
    Scaf_analysis.Registry.create prog @ Scaf_speculation.Registry.create p
  in
  Scaf.Orchestrator.create prog (f (Scaf.Orchestrator.default_config modules))

let ablation_sweep f () =
  let p = Lazy.force profiles in
  let o = orchestrator_with p f in
  ignore
    (Scaf_pdg.Pdg.run_loop p.Scaf_profile.Profiles.ctx
       ~resolver:(Scaf.Orchestrator.handle o)
       "main:loop")

let ablation_tests =
  [
    Test.make ~name:"ablation/desired-result-on"
      (Staged.stage (ablation_sweep (fun c -> c)));
    Test.make ~name:"ablation/desired-result-off"
      (Staged.stage
         (ablation_sweep (fun c ->
              { c with Scaf.Orchestrator.respect_desired = false })));
    Test.make ~name:"ablation/join-all"
      (Staged.stage
         (ablation_sweep (fun c ->
              { c with Scaf.Orchestrator.join_policy = Scaf.Join.All })));
    Test.make ~name:"ablation/bailout-exhaustive"
      (Staged.stage
         (ablation_sweep (fun c ->
              {
                c with
                Scaf.Orchestrator.bailout = Scaf.Orchestrator.Exhaustive;
              })));
    Test.make ~name:"ablation/spec-modules-first"
      (Staged.stage
         (ablation_sweep (fun c ->
              {
                c with
                Scaf.Orchestrator.modules = List.rev c.Scaf.Orchestrator.modules;
              })));
    Test.make ~name:"ablation/premise-depth-1"
      (Staged.stage
         (ablation_sweep (fun c ->
              { c with Scaf.Orchestrator.max_premise_depth = 1 })));
  ]

(* ------------------------------------------------------------------ *)
(* cache/* — the canonicalizing sharded response cache                  *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  let resp = Scaf.Response.free (Scaf.Aresult.RModref Scaf.Aresult.NoModRef) in
  let mq n = Scaf.Query.modref_instrs ~tr:Scaf.Query.Same n (n + 1) in
  let aq n =
    Scaf.Query.alias ~fname:"main" ~tr:Scaf.Query.Before
      (Scaf_ir.Value.Global "a", 8)
      (Scaf_ir.Value.Reg (Printf.sprintf "r%d" n), 8)
  in
  let mirror q =
    match q with
    | Scaf.Query.Alias a ->
        Scaf.Query.Alias
          {
            a with
            Scaf.Query.a1 = a.Scaf.Query.a2;
            a2 = a.Scaf.Query.a1;
            atr = Scaf.Query.flip_temporal a.Scaf.Query.atr;
          }
    | q -> q
  in
  let warm = Scaf.Qcache.create () in
  for n = 0 to 1023 do
    Scaf.Qcache.add_q warm (mq n) resp;
    Scaf.Qcache.add_q warm (aq n) resp
  done;
  let full = Scaf.Qcache.create ~shards:1 ~capacity:256 () in
  for n = 0 to 255 do
    Scaf.Qcache.add_q full (mq n) resp
  done;
  let evict_n = ref 0 in
  (* one run = [ops] lookups + inserts per domain, all on one shared cache *)
  let contention domains =
    let ops = 8192 in
    fun () ->
      let body i () =
        for n = 0 to ops - 1 do
          let k = ((i * ops) + n) mod 1024 in
          ignore (Scaf.Qcache.find_q warm (mq k));
          if n mod 8 = 0 then Scaf.Qcache.add_q warm (mq k) resp
        done
      in
      let ds = List.init (domains - 1) (fun i -> Domain.spawn (body (i + 1))) in
      body 0 ();
      List.iter Domain.join ds
  in
  (* the L1 tier: one local pre-warmed on a single key (the pure
     unsynchronized probe), one too small to retain its pulls (every find
     falls through to the shared store and pulls the entry back in), and
     one measuring the amortized flush_every=32 publication batch *)
  let l1_warm = Scaf.Qcache.Local.create warm in
  ignore (Scaf.Qcache.Local.find_q l1_warm (mq 17));
  let l1_tiny = Scaf.Qcache.Local.create ~capacity:8 warm in
  let pull_n = ref 0 in
  (* the publish bench feeds a dedicated store: millions of fresh keys
     per bechamel run would evict [warm]'s working set and poison the
     contention measurements below *)
  let l1_pub = Scaf.Qcache.Local.create ~flush_every:32 (Scaf.Qcache.create ()) in
  let pub_n = ref 0 in
  [
    Test.make ~name:"cache/hit"
      (Staged.stage (fun () -> ignore (Scaf.Qcache.find_q warm (mq 17))));
    Test.make ~name:"cache/canonical-hit"
      (Staged.stage (fun () -> ignore (Scaf.Qcache.find_q warm (mirror (aq 17)))));
    Test.make ~name:"cache/miss"
      (Staged.stage (fun () -> ignore (Scaf.Qcache.find_q warm (mq 999_999))));
    Test.make ~name:"cache/add-evict"
      (Staged.stage (fun () ->
           incr evict_n;
           Scaf.Qcache.add_q full (mq (256 + !evict_n)) resp));
    Test.make ~name:"cache/l1-hit"
      (Staged.stage (fun () -> ignore (Scaf.Qcache.Local.find_q l1_warm (mq 17))));
    Test.make ~name:"cache/l1-pull-shared"
      (Staged.stage (fun () ->
           incr pull_n;
           ignore (Scaf.Qcache.Local.find_q l1_tiny (mq (!pull_n mod 1024)))));
    Test.make ~name:"cache/l1-add-publish-32"
      (Staged.stage (fun () ->
           incr pub_n;
           let q = mq (1_000_000 + !pub_n) in
           match Scaf.Qcache.key_of ~epoch:0 q with
           | Some k -> Scaf.Qcache.Local.add l1_pub k resp
           | None -> ()));
    Test.make ~name:"cache/contention-1dom" (Staged.stage (contention 1));
    Test.make ~name:"cache/contention-2dom" (Staged.stage (contention 2));
    Test.make ~name:"cache/contention-4dom" (Staged.stage (contention 4));
  ]

(* ------------------------------------------------------------------ *)
(* parallel/* — the batched query engine: fig8-style sweep vs jobs      *)
(* ------------------------------------------------------------------ *)

let parallel_tests =
  let p =
    lazy
      (let b = Option.get (Scaf_suite.Registry.find "429.mcf") in
       Scaf_profile.Profiler.profile_module
         ~inputs:(Scaf_suite.Program.train_inputs b)
         (Scaf_suite.Program.program b))
  in
  (* one run = the full hot-loop PDG sweep of 429.mcf (4 hot loops) under
     SCAF, fanned out across [jobs] worker domains over a shared cache *)
  let sweep jobs () =
    let p = Lazy.force p in
    ignore
      (Scaf_pdg.Nodep.evaluate_scheme ~jobs ~bname:"429.mcf" p
         (Scaf_pdg.Schemes.scaf_scheme p))
  in
  (* a persistent pool shared across runs: the steady-state fan-out cost,
     without the per-call domain spawn the jobs-N variants pay *)
  let pool4 = lazy (Scaf_pdg.Scheduler.create ~jobs:4 ()) in
  let pooled_sweep () =
    let p = Lazy.force p in
    ignore
      (Scaf_pdg.Nodep.evaluate_scheme ~pool:(Lazy.force pool4) ~bname:"429.mcf"
         p
         (Scaf_pdg.Schemes.scaf_scheme p))
  in
  (* a deliberately imbalanced batch: the static split hands the first
     worker all the heavy items, so every measured run exercises the
     steal path (half-interval theft + deterministic reassembly) *)
  let steal_sweep () =
    let pool = Lazy.force pool4 in
    let spin k =
      let acc = ref 0 in
      for i = 1 to k do
        acc := !acc + i
      done;
      Sys.opaque_identity !acc
    in
    ignore
      (Scaf_pdg.Scheduler.map pool
         ~state:(fun () -> ())
         ~f:(fun () i -> spin (if i < 8 then 100_000 else 1_000))
         (List.init 64 Fun.id))
  in
  [
    Test.make ~name:"parallel/fig8-sweep-jobs-1" (Staged.stage (sweep 1));
    Test.make ~name:"parallel/fig8-sweep-jobs-2" (Staged.stage (sweep 2));
    Test.make ~name:"parallel/fig8-sweep-jobs-4" (Staged.stage (sweep 4));
    Test.make ~name:"parallel/fig8-sweep-pool-4" (Staged.stage pooled_sweep);
    Test.make ~name:"parallel/steal-imbalanced-4dom" (Staged.stage steal_sweep);
  ]

(* ------------------------------------------------------------------ *)
(* substrate/*                                                         *)
(* ------------------------------------------------------------------ *)

let substrate_tests =
  let big =
    Scaf_suite.Program.program (Option.get (Scaf_suite.Registry.find "429.mcf"))
  in
  let text = Scaf_ir.Irmod.to_string big in
  let f = Option.get (Scaf_ir.Irmod.find_func suite_bench "arc_run") in
  let cfg = Scaf_cfg.Cfg.of_func f in
  [
    Test.make ~name:"substrate/parse-429.mcf"
      (Staged.stage (fun () -> ignore (Scaf_ir.Parser.parse_exn_msg text)));
    Test.make ~name:"substrate/domtree"
      (Staged.stage (fun () -> ignore (Scaf_cfg.Dom.compute cfg)));
    Test.make ~name:"substrate/postdomtree"
      (Staged.stage (fun () -> ignore (Scaf_cfg.Dom.compute_post cfg)));
    Test.make ~name:"substrate/loops"
      (Staged.stage (fun () -> ignore (Scaf_cfg.Loops.compute cfg)));
    Test.make ~name:"substrate/interp-motivating"
      (Staged.stage (fun () -> ignore (Scaf_interp.Eval.run motivating)));
    Test.make ~name:"substrate/profile-motivating"
      (Staged.stage (fun () ->
           ignore (Scaf_profile.Profiler.profile_module motivating)));
  ]

(* ------------------------------------------------------------------ *)
(* resilience/* — checkpoint overhead and recovery cost                 *)
(* ------------------------------------------------------------------ *)

let resilience_tests =
  let prog = Scaf_cfg.Progctx.build motivating in
  let m = prog.Scaf_cfg.Progctx.m in
  let lids =
    Hashtbl.fold (fun lid _ acc -> lid :: acc) prog.Scaf_cfg.Progctx.by_lid []
    |> List.sort compare
  in
  let load_v = ref (-1) in
  Scaf_ir.Irmod.iter_instrs m (fun _ _ i ->
      if i.Scaf_ir.Instr.dst = Some "v" then load_v := i.Scaf_ir.Instr.id);
  let ckpt_only = Scaf_transform.Instrument.instrument prog ~checkpoints:lids [] in
  let failing =
    {
      Scaf.Assertion.module_id = "bench-false";
      points = [];
      cost = 1.0;
      conflicts = [];
      payload = Scaf.Assertion.Value_predict { load = !load_v; value = -999L };
    }
  in
  let rollback =
    Scaf_transform.Instrument.instrument prog ~checkpoints:lids [ failing ]
  in
  let chaos_sweep () =
    let p = Lazy.force profiles in
    let prog = p.Scaf_profile.Profiles.ctx in
    let modules =
      Scaf_analysis.Registry.create prog @ Scaf_speculation.Registry.create p
    in
    let wrapped, _ =
      Scaf_faultinject.Chaos.wrap_all
        (Scaf_faultinject.Chaos.config ~seed:1 ~p_raise:0.5 ())
        modules
    in
    let o = Scaf.Orchestrator.create prog (Scaf.Orchestrator.default_config wrapped) in
    ignore
      (Scaf_pdg.Pdg.run_loop prog ~resolver:(Scaf.Orchestrator.handle o) "main:loop")
  in
  [
    Test.make ~name:"resilience/run-plain"
      (Staged.stage (fun () -> ignore (Scaf_interp.Eval.run m)));
    Test.make ~name:"resilience/run-checkpointed"
      (Staged.stage (fun () ->
           ignore (Scaf_interp.Eval.run ckpt_only.Scaf_transform.Instrument.imod)));
    Test.make ~name:"resilience/rollback-replay"
      (Staged.stage (fun () ->
           ignore (Scaf_interp.Eval.run rollback.Scaf_transform.Instrument.imod)));
    Test.make ~name:"resilience/chaos-sweep" (Staged.stage chaos_sweep);
  ]

(* ------------------------------------------------------------------ *)
(* trace/* — observability overhead                                     *)
(* ------------------------------------------------------------------ *)

(* one run = the motivating example's hot-loop PDG sweep under SCAF with
   the given sink / metrics registry attached (fresh resolver per run,
   like query/scaf-sweep) *)
let traced_sweep ?metrics (sink : Scaf_trace.Sink.t) () =
  let p = Lazy.force profiles in
  let r =
    (Scaf_pdg.Schemes.scaf_scheme ~trace:sink ?metrics p).Scaf_pdg.Schemes.spawn
      ()
  in
  ignore
    (Scaf_pdg.Pdg.run_loop p.Scaf_profile.Profiles.ctx
       ~resolver:r.Scaf_pdg.Schemes.resolve "main:loop")

let trace_tests =
  [
    Test.make ~name:"trace/sweep-noop-sink"
      (Staged.stage (traced_sweep Scaf_trace.Sink.noop));
    Test.make ~name:"trace/sweep-sampled-out"
      (Staged.stage (fun () ->
           traced_sweep (Scaf_trace.Sink.create ~sample_every:1_000_000 ()) ()));
    Test.make ~name:"trace/sweep-collect-all"
      (Staged.stage (fun () -> traced_sweep (Scaf_trace.Sink.create ()) ()));
    Test.make ~name:"trace/sweep-metrics"
      (Staged.stage (fun () ->
           traced_sweep
             ~metrics:(Scaf_trace.Metrics.create ())
             Scaf_trace.Sink.noop ()));
  ]

(* ------------------------------------------------------------------ *)
(* incremental/* — the edit/invalidate/re-answer engine                 *)
(* ------------------------------------------------------------------ *)

(* One warm 181.mcf session, shared by the whole group. Each edit run is
   an insert/delete round-trip: the program returns to its original shape,
   so repeated bench iterations neither grow the module nor drift the
   measured work. *)
let incr_session =
  lazy
    (let s =
       Scaf_incremental.Session.create
         (Option.get (Scaf_suite.Registry.find "181.mcf"))
     in
     List.iter
       (fun q -> ignore (Scaf_incremental.Session.ask s q))
       (Scaf_incremental.Session.workload s);
     s)

let incr_edit_roundtrip (s : Scaf_incremental.Session.t) =
  let module Session = Scaf_incremental.Session in
  match Session.edit s [ Session.auto_edit s ] with
  | Error e -> failwith (Scaf_lint.Diagnostic.to_summary e)
  | Ok (diff, _) -> (
      match diff.Scaf_suite.Edit.touched_instrs with
      | [ id ] -> (
          match Session.edit s [ Scaf_suite.Edit.Delete_instr { id } ] with
          | Error e -> failwith (Scaf_lint.Diagnostic.to_summary e)
          | Ok _ -> ())
      | _ -> failwith "roundtrip: unexpected diff")

let incremental_tests =
  [
    Test.make ~name:"incremental/warm-sweep"
      (Staged.stage (fun () ->
           let s = Lazy.force incr_session in
           List.iter
             (fun q -> ignore (Scaf_incremental.Session.ask s q))
             (Scaf_incremental.Session.workload s)));
    Test.make ~name:"incremental/edit-invalidate-roundtrip"
      (Staged.stage (fun () ->
           incr_edit_roundtrip (Lazy.force incr_session)));
    Test.make ~name:"incremental/post-edit-reanswer"
      (Staged.stage (fun () ->
           let s = Lazy.force incr_session in
           incr_edit_roundtrip s;
           List.iter
             (fun q -> ignore (Scaf_incremental.Session.ask s q))
             (Scaf_incremental.Session.workload s)));
  ]

(* The incremental CI gate: on every fig8 benchmark, the scripted
   single-loop edit must (a) re-answer fewer than 20% of the workload
   queries and (b) leave the surviving answers byte-identical to a
   from-scratch batch run of the edited program. *)
let incremental_gate () =
  let module Session = Scaf_incremental.Session in
  let fail = ref 0 in
  List.iter
    (fun name ->
      let s = Session.create (Option.get (Scaf_suite.Registry.find name)) in
      List.iter (fun q -> ignore (Session.ask s q)) (Session.workload s);
      match Session.edit s [ Session.auto_edit s ] with
      | Error e ->
          Fmt.pr "%-16s EDIT FAILED: %s@." name
            (Scaf_lint.Diagnostic.to_summary e);
          incr fail
      | Ok _ ->
          Session.reset_counters s;
          let inc = Session.render_answers s (Session.workload s) in
          let c = Session.counters s in
          let b = Session.baseline s in
          let batch = Session.render_answers b (Session.workload b) in
          let pct =
            100.0
            *. float_of_int c.Session.recomputed
            /. float_of_int (max 1 c.Session.asked)
          in
          let same = String.equal inc batch in
          if (not same) || pct >= 20.0 then incr fail;
          Fmt.pr "%-16s re-answered %3d/%3d (%5.1f%%, limit 20%%)  \
                  differential: %s@."
            name c.Session.recomputed c.Session.asked pct
            (if same then "byte-identical" else "MISMATCH"))
    Scaf_suite.Registry.names;
  if !fail > 0 then begin
    Fmt.pr "incremental-gate: FAIL (%d benchmarks)@." !fail;
    exit 1
  end;
  Fmt.pr "incremental-gate: OK@."

(* The CI regression gate: tracing must be near-zero-cost when it is not
   collecting. Alternates the no-op-sink sweep with an enabled sink whose
   sampler rejects every query, and compares medians, so machine drift
   hits both configurations equally. *)
let gate_tolerance = 1.35

let trace_gate () =
  let noop = traced_sweep Scaf_trace.Sink.noop in
  let sampled_sink = Scaf_trace.Sink.create ~sample_every:1_000_000 () in
  let sampled = traced_sweep sampled_sink in
  (* force lazy profiling and warm both paths *)
  noop ();
  sampled ();
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let t_noop = ref [] and t_sampled = ref [] in
  for _ = 1 to 21 do
    t_noop := time noop :: !t_noop;
    t_sampled := time sampled :: !t_sampled
  done;
  let median xs =
    let a = List.sort Float.compare xs in
    List.nth a (List.length a / 2)
  in
  let m0 = median !t_noop and m1 = median !t_sampled in
  let ratio = if m0 > 0.0 then m1 /. m0 else 1.0 in
  Fmt.pr
    "trace-gate: noop-sink median %.3f ms, sampled-out median %.3f ms, \
     ratio %.2f (limit %.2f)@."
    (1e3 *. m0) (1e3 *. m1) ratio gate_tolerance;
  if ratio > gate_tolerance then begin
    Fmt.pr "trace-gate: FAIL — disabled tracing regressed the hot path@.";
    exit 1
  end;
  Fmt.pr "trace-gate: OK@."

(* The multicore scaling gate: at 4 jobs the fig8-style bench-level
   fan-out and the fig10-style loop-level fan-out must both run at least
   2x faster than the identical work at 1 job. Skips with exit 0 on
   machines without 4 cores — a 1- or 2-core container cannot measure a
   4-way speedup; the other half of the contract (reports byte-identical
   at any [--jobs N]) is core-count-independent and is checked separately
   by CI diffing scaf_eval output across job counts. *)
let scale_min_speedup = 2.0

let scale_gate () =
  let cores = Domain.recommended_domain_count () in
  if cores < 4 then begin
    Fmt.pr
      "scale-gate: SKIP — %d core(s) available, need >= 4 to measure the \
       4-job speedup@."
      cores;
    exit 0
  end;
  (* one materialization, reused everywhere: profiles memoize per handle,
     and the warm-up sweep below forces every one of them, so neither
     timed configuration pays for profiling *)
  let benchmarks = Scaf_suite.Registry.all () in
  ignore (Scaf_report.Experiments.evaluate_all ~benchmarks ());
  let median3 f =
    let time () =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let xs = List.sort Float.compare [ time (); time (); time () ] in
    List.nth xs 1
  in
  (* fig8 proxy: whole benchmarks fan out across the pool *)
  let fig8 jobs () =
    Scaf_pdg.Scheduler.with_pool ~jobs (fun pool ->
        ignore (Scaf_report.Experiments.evaluate_all ~pool ~benchmarks ()))
  in
  (* fig10 proxy: benchmarks in sequence, hot loops fan out within each *)
  let fig10 jobs () =
    Scaf_pdg.Scheduler.with_pool ~jobs (fun pool ->
        List.iter
          (fun b ->
            let p = Scaf_suite.Program.profiles b in
            ignore
              (Scaf_pdg.Nodep.evaluate_scheme ~pool
                 ~bname:(Scaf_suite.Program.id b) p
                 (Scaf_pdg.Schemes.scaf_scheme p)))
          benchmarks)
  in
  let gate what slow fast =
    let t1 = median3 slow in
    let t4 = median3 fast in
    let speedup = if t4 > 0.0 then t1 /. t4 else 0.0 in
    Fmt.pr
      "scale-gate: %-5s jobs=1 %6.3f s, jobs=4 %6.3f s, speedup %.2fx \
       (need >= %.1fx)@."
      what t1 t4 speedup scale_min_speedup;
    speedup >= scale_min_speedup
  in
  let ok8 = gate "fig8" (fig8 1) (fig8 4) in
  let ok10 = gate "fig10" (fig10 1) (fig10 4) in
  if not (ok8 && ok10) then begin
    Fmt.pr "scale-gate: FAIL — the parallel fan-out is not scaling@.";
    exit 1
  end;
  Fmt.pr "scale-gate: OK@."

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

(* Measured estimates of the current invocation, for the [--json]
   snapshot (BENCH_*.json) that future PRs diff against. *)
let measured : (string * float) list ref = ref []

let run_tests (tests : Test.t list) =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ t ] ->
              measured := (name, t) :: !measured;
              Fmt.pr "%-36s %12.1f ns/run@." name t
          | _ -> Fmt.pr "%-36s (no estimate)@." name)
        ols)
    tests

(* Persist the run as a flat {"benchmarks": {name: ns_per_run}} snapshot;
   ci/compare_bench.py gates regressions against a committed baseline. *)
let write_json (path : string) =
  let open Scaf_server in
  let entries =
    List.sort (fun (a, _) (b, _) -> compare a b) !measured
    |> List.map (fun (name, ns) -> (name, Json.float ns))
  in
  let j =
    Json.Obj
      [
        ("schema", Json.Int 1);
        ("unit", Json.String "ns/run");
        ("benchmarks", Json.Obj entries);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %d estimates to %s@." (List.length entries) path

(* Precision side of the ablations: premise depth and module order do not
   change soundness, only how much gets resolved (depth) and how fast. *)
let precision_table () =
  let p = Lazy.force mcf_profiles in
  let prog = p.Scaf_profile.Profiles.ctx in
  let nodep_with f =
    let o = orchestrator_with p f in
    let r =
      Scaf_pdg.Pdg.run_loop prog
        ~resolver:(Scaf.Orchestrator.handle o)
        "arc_run:loop"
    in
    Scaf_pdg.Pdg.nodep_pct r
  in
  Fmt.pr "@.ablation precision (%%NoDep on 181.mcf arc loop):@.";
  List.iter
    (fun depth ->
      Fmt.pr "  premise depth %d -> %5.1f@." depth
        (nodep_with (fun c ->
             { c with Scaf.Orchestrator.max_premise_depth = depth })))
    [ 0; 1; 2; 3; 4 ];
  Fmt.pr "  join=ALL        -> %5.1f@."
    (nodep_with (fun c ->
         { c with Scaf.Orchestrator.join_policy = Scaf.Join.All }));
  Fmt.pr "  spec-first      -> %5.1f@."
    (nodep_with (fun c ->
         { c with Scaf.Orchestrator.modules = List.rev c.Scaf.Orchestrator.modules }))

let groups =
  [
    ("validation", "validation primitives (Figure 7)", validation_tests);
    ("query", "per-scheme PDG sweeps", query_tests);
    ("ablation", "ablations (latency)", ablation_tests);
    ("cache", "cache", cache_tests);
    ("parallel", "parallel batch engine", parallel_tests);
    ("substrate", "substrate", substrate_tests);
    ("resilience", "resilience", resilience_tests);
    ("trace", "observability", trace_tests);
    ("incremental", "incremental re-analysis engine", incremental_tests);
  ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ "trace-gate" ] -> trace_gate ()
  | [ "incremental-gate" ] -> incremental_gate ()
  | [ "scale-gate" ] -> scale_gate ()
  | args ->
      let rec split_json acc = function
        | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
        | a :: rest -> split_json (a :: acc) rest
        | [] -> (None, List.rev acc)
      in
      let json_out, args = split_json [] args in
      let want name = args = [] || List.mem name args in
      List.iter
        (fun (name, title, tests) ->
          if want name then begin
            Fmt.pr "== %s ==@." title;
            run_tests tests;
            Fmt.pr "@."
          end)
        groups;
      (match json_out with Some path -> write_json path | None -> ());
      if want "ablation" then precision_table ()
