(** Property-based soundness: on randomly generated affine loop programs,
    any dependence that the analyses disprove *without assertions* must
    never manifest during execution, and any dependence disproven by SCAF
    at an affordable cost must not manifest on the profiled input (the
    input the assertions were validated against). *)

open Scaf
open Scaf_ir
open Scaf_profile
open Scaf_pdg

(* A random access: array choice, stride and offset of an affine address,
   and whether it stores. All offsets stay in-bounds for 64 iterations over
   an 800-byte array. *)
type acc = { arr : string; stride : int; off : int; is_store : bool }

let gen_acc =
  QCheck.Gen.(
    let* arr = oneofl [ "A"; "B" ] in
    let* stride = oneofl [ 0; 4; 8 ] in
    let* off = int_range 0 8 >|= fun k -> 8 * k in
    let* is_store = bool in
    return { arr; stride; off; is_store })

let gen_prog = QCheck.Gen.list_size (QCheck.Gen.int_range 2 6) gen_acc

let print_prog accs =
  String.concat "; "
    (List.map
       (fun a ->
         Printf.sprintf "%s@%s[%di+%d]"
           (if a.is_store then "st" else "ld")
           a.arr a.stride a.off)
       accs)

let program_of (accs : acc list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "global @A 800\nglobal @B 800\n";
  Buffer.add_string b "func @main() {\nentry:\n  br loop\nloop:\n";
  Buffer.add_string b "  %i = phi [entry: 0], [loop: %i2]\n";
  List.iteri
    (fun k a ->
      Buffer.add_string b
        (Printf.sprintf "  %%m%d = mul %%i, %d\n" k a.stride);
      Buffer.add_string b
        (Printf.sprintf "  %%o%d = add %%m%d, %d\n" k k a.off);
      Buffer.add_string b
        (Printf.sprintf "  %%p%d = gep @%s, %%o%d\n" k a.arr k);
      if a.is_store then
        Buffer.add_string b (Printf.sprintf "  store 8, %%p%d, %%i\n" k)
      else
        Buffer.add_string b (Printf.sprintf "  %%v%d = load 8, %%p%d\n" k k))
    accs;
  Buffer.add_string b
    "  %i2 = add %i, 1\n  %c = icmp slt %i2, 64\n  condbr %c, loop, exit\n";
  Buffer.add_string b "exit:\n  ret\n}\n";
  Buffer.contents b

let check_scheme ~require_free (accs : acc list)
    (mk : Profiles.t -> Schemes.resolver) : bool =
  let m = Parser.parse_exn_msg (program_of accs) in
  Verify.check_exn m;
  let profiles = Profiler.profile_module m in
  let prog = profiles.Profiles.ctx in
  let lid = "main:loop" in
  let r = Pdg.run_loop prog ~resolver:(mk profiles).Schemes.resolve lid in
  List.for_all
    (fun (q : Pdg.qresult) ->
      let counts =
        q.Pdg.nodep
        && ((not require_free) || Response.Options.has_free q.Pdg.resp.Response.options)
      in
      (not counts)
      || not
           (Memdep_profile.observed profiles.Profiles.memdep ~lid
              ~src:q.Pdg.dq.Pdg.src ~dst:q.Pdg.dq.Pdg.dst
              ~cross:q.Pdg.dq.Pdg.cross))
    r.Pdg.queries

let prop_caf_sound =
  QCheck.Test.make ~count:60
    ~name:"CAF never disproves a dependence that manifests"
    (QCheck.make ~print:print_prog gen_prog)
    (fun accs -> check_scheme ~require_free:true accs Schemes.caf)

let prop_scaf_free_answers_sound =
  QCheck.Test.make ~count:40
    ~name:"SCAF's assertion-free answers never contradict execution"
    (QCheck.make ~print:print_prog gen_prog)
    (fun accs -> check_scheme ~require_free:true accs Schemes.scaf)

let prop_scaf_at_least_as_precise =
  QCheck.Test.make ~count:30
    ~name:"SCAF resolves a superset of what CAF and confluence resolve"
    (QCheck.make ~print:print_prog gen_prog)
    (fun accs ->
      let m = Parser.parse_exn_msg (program_of accs) in
      let profiles = Profiler.profile_module m in
      let prog = profiles.Profiles.ctx in
      let lid = "main:loop" in
      let nodeps mk =
        let r = Pdg.run_loop prog ~resolver:(mk profiles).Schemes.resolve lid in
        List.filter_map
          (fun (q : Pdg.qresult) -> if q.Pdg.nodep then Some q.Pdg.dq else None)
          r.Pdg.queries
      in
      let caf = nodeps Schemes.caf in
      let conf = nodeps Schemes.confluence in
      let scaf = nodeps Schemes.scaf in
      List.for_all (fun d -> List.mem d scaf) caf
      && List.for_all (fun d -> List.mem d scaf) conf)

(* The interpreter agrees with the affine model: two affine accesses with a
   constant same-iteration distance overlap exactly when the intervals do. *)
let prop_affine_model_matches_interp =
  QCheck.Test.make ~count:60
    ~name:"affine same-iteration distance model matches execution"
    (QCheck.make
       ~print:(fun (a, b) -> print_prog [ a; b ])
       QCheck.Gen.(pair gen_acc gen_acc))
    (fun (a, b) ->
      (* force same array and a store so a dependence is possible *)
      let a = { a with is_store = true } in
      let b = { b with arr = a.arr } in
      let m = Parser.parse_exn_msg (program_of [ a; b ]) in
      let profiles = Profiler.profile_module m in
      let lid = "main:loop" in
      (* the model: did any same-iteration byte overlap happen? *)
      let observed_intra =
        List.exists
          (fun k ->
            let addr1 = (a.stride * k) + a.off
            and addr2 = (b.stride * k) + b.off in
            addr1 < addr2 + 8 && addr2 < addr1 + 8)
          (List.init 64 Fun.id)
      in
      (* find instruction ids of the two accesses *)
      let ids = ref [] in
      Irmod.iter_instrs m (fun _ _ i ->
          if Instr.accesses_memory i then ids := i.Instr.id :: !ids);
      match List.rev !ids with
      | [ i1; i2 ] ->
          let obs =
            Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i1
              ~dst:i2 ~cross:false
            || Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i2
                 ~dst:i1 ~cross:false
          in
          (* the model and the profiler agree on whether any same-iteration
             byte overlap occurred (profiler only records when one side
             writes, which [a] does) *)
          Bool.equal obs observed_intra
      | _ -> QCheck.assume_fail ())

let suite =
  [
    ( "soundness",
      [
        QCheck_alcotest.to_alcotest prop_caf_sound;
        QCheck_alcotest.to_alcotest prop_scaf_free_answers_sound;
        QCheck_alcotest.to_alcotest prop_scaf_at_least_as_precise;
        QCheck_alcotest.to_alcotest prop_affine_model_matches_interp;
      ] );
  ]
