(** Test driver: aggregates every suite in this directory. *)

let () =
  Alcotest.run "scaf"
    (Test_ir.suite @ Test_cfg.suite @ Test_interp.suite @ Test_core.suite
     @ Test_analysis.suite @ Test_profile.suite @ Test_speculation.suite @ Test_motivating.suite @ Test_transform.suite @ Test_suite.suite @ Test_soundness.suite @ Test_context.suite @ Test_report.suite @ Test_temporal.suite @ Test_resilience.suite @ Test_qcache.suite @ Test_trace.suite @ Test_audit.suite @ Test_server.suite @ Test_incremental.suite @ Test_lint.suite)
