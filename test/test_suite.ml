(** Tests over the 16-benchmark suite: every program is well-formed and
    runs; hot-loop selection matches the paper's totals; scheme precision
    is ordered; speculation never misspeculates on the training input and
    always recovers correctly on the reference input. *)

open Scaf_suite

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_all_parse_verify_run () =
  List.iter
    (fun (b : Program.t) ->
      let m = Program.program b in
      List.iter
        (fun input ->
          let r = Scaf_interp.Eval.run ~input m in
          checkb
            (Program.id b ^ " produced output")
            true
            (r.Scaf_interp.Eval.output <> []))
        (Program.train_inputs b @ [ Program.ref_input b ]))
    (Registry.all ())

let test_sixteen_benchmarks () =
  checki "16 benchmarks" 16 (List.length (Registry.all ()))

let test_hot_loop_count () =
  (* the paper evaluates 56 hot loops across the 16 benchmarks *)
  let total =
    List.fold_left
      (fun acc (b : Program.t) ->
        ignore (Program.program b);
        let p = Program.profiles b in
        acc + List.length (Scaf_pdg.Nodep.hot_loop_weights p))
      0 (Registry.all ())
  in
  checki "56 hot loops" 56 total

let scheme_order b =
  let e = Scaf_report.Experiments.evaluate_bench b in
  let caf = e.Scaf_report.Experiments.caf.Scaf_pdg.Nodep.weighted_nodep in
  let conf = e.Scaf_report.Experiments.confluence.Scaf_pdg.Nodep.weighted_nodep in
  let scaf = e.Scaf_report.Experiments.scaf.Scaf_pdg.Nodep.weighted_nodep in
  let obs =
    100.0 -. e.Scaf_report.Experiments.observed.Scaf_pdg.Nodep.weighted_nodep
  in
  checkb
    (Printf.sprintf "%s: CAF(%.1f) <= Confl(%.1f)" (Program.id b) caf conf)
    true (caf <= conf +. 1e-9);
  checkb
    (Printf.sprintf "%s: Confl(%.1f) <= SCAF(%.1f)" (Program.id b) conf scaf)
    true (conf <= scaf +. 1e-9);
  (* SCAF strictly beats confluence on every benchmark (paper §5.1) *)
  checkb
    (Printf.sprintf "%s: SCAF(%.1f) > Confl(%.1f)" (Program.id b) scaf conf)
    true (scaf > conf);
  ignore obs

let test_scheme_order_all () = List.iter scheme_order (Registry.all ())

(* Soundness spot-check: CAF (assertion-free static analysis) must never
   disprove a dependence that manifests during profiling. *)
let test_caf_sound_vs_observed () =
  List.iter
    (fun name ->
      let b = Option.get (Registry.find name) in
      ignore (Program.program b);
      let p = Program.profiles b in
      let prog = p.Scaf_profile.Profiles.ctx in
      let caf = Scaf_pdg.Schemes.caf p in
      List.iter
        (fun (lid, _) ->
          let r =
            Scaf_pdg.Pdg.run_loop prog
              ~resolver:caf.Scaf_pdg.Schemes.resolve lid
          in
          List.iter
            (fun (qr : Scaf_pdg.Pdg.qresult) ->
              if qr.Scaf_pdg.Pdg.nodep then
                checkb
                  (Printf.sprintf "%s %s: %d->%d cross=%b disproven but observed"
                     name lid qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.src
                     qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.dst
                     qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.cross)
                  false
                  (Scaf_profile.Memdep_profile.observed
                     p.Scaf_profile.Profiles.memdep ~lid
                     ~src:qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.src
                     ~dst:qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.dst
                     ~cross:qr.Scaf_pdg.Pdg.dq.Scaf_pdg.Pdg.cross))
            r.Scaf_pdg.Pdg.queries)
        (Scaf_pdg.Nodep.hot_loop_weights p))
    [ "052.alvinn"; "181.mcf"; "482.sphinx3"; "164.gzip" ]

(* End-to-end speculation: plan, instrument, run. Training input must not
   misspeculate; the reference input must recover to the original output. *)
let test_speculation_end_to_end () =
  List.iter
    (fun name ->
      let b = Option.get (Registry.find name) in
      let m = Program.program b in
      let p = Program.profiles b in
      let _plan, instrumented = Scaf_transform.Apply.speculate p in
      let train = List.hd (Program.train_inputs b) in
      let ot =
        Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
          ~input:train ()
      in
      checkb (name ^ ": no train misspec") false
        ot.Scaf_transform.Apply.misspeculated;
      checkb (name ^ ": train output intact") true
        (ot.Scaf_transform.Apply.result.Scaf_interp.Eval.output
        = (Scaf_interp.Eval.run ~input:train m).Scaf_interp.Eval.output);
      let oref =
        Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
          ~input:(Program.ref_input b) ()
      in
      checkb (name ^ ": ref output recovered") true
        (oref.Scaf_transform.Apply.result.Scaf_interp.Eval.output
        = (Scaf_interp.Eval.run ~input:(Program.ref_input b) m)
            .Scaf_interp.Eval.output))
    [ "052.alvinn"; "175.vpr"; "429.mcf"; "462.libquantum" ]

let suite =
  [
    ( "suite",
      [
        Alcotest.test_case "all benchmarks parse/verify/run" `Quick
          test_all_parse_verify_run;
        Alcotest.test_case "sixteen benchmarks" `Quick test_sixteen_benchmarks;
        Alcotest.test_case "56 hot loops" `Quick test_hot_loop_count;
        Alcotest.test_case "scheme precision order, all benchmarks" `Slow
          test_scheme_order_all;
        Alcotest.test_case "CAF sound vs observed deps" `Slow
          test_caf_sound_vs_observed;
        Alcotest.test_case "speculation end to end" `Slow
          test_speculation_end_to_end;
      ] );
  ]
