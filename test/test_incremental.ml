(** Properties of the incremental re-analysis engine.

    Two qcheck properties over random benchmarks and random edit scripts:

    - {e differential}: after any edit script, the incremental session's
      workload answers are byte-identical to a from-scratch batch session
      over the same edited program;
    - {e precision}: an edit to loop [L] never recomputes a query whose
      read-set excludes [L] — judged by the recompute counters over the
      queries whose provenance closure (premise-transitive functions,
      widened by their value-flow components) misses the edited function.

    Plus deterministic unit tests of the session lifecycle: epoch
    stamping, counter behavior, invalidation stats sanity, and the
    daemon-facing auto edit. *)

open Scaf_suite
open Scaf_incremental

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* The same phi-prefix rule the scripted edit uses: inserted instructions
   must land after a header block's leading phis. *)
let phi_prefix (p : Program.t) (fname : string) (header : string) : int =
  match
    Option.bind
      (Scaf_ir.Irmod.find_func (Program.program p) fname)
      (fun f -> Scaf_ir.Func.find_block f header)
  with
  | None -> 0
  | Some b ->
      let rec go n = function
        | { Scaf_ir.Instr.kind = Scaf_ir.Instr.Phi _; _ } :: rest ->
            go (n + 1) rest
        | _ -> n
      in
      go 0 b.Scaf_ir.Block.instrs

let split_lid lid =
  match String.index_opt lid ':' with
  | Some i ->
      (String.sub lid 0 i, String.sub lid (i + 1) (String.length lid - i - 1))
  | None -> invalid_arg ("malformed lid " ^ lid)

let hot_lids (s : Session.t) : string list =
  List.map fst
    (Scaf_pdg.Nodep.hot_loop_weights (Program.profiles (Session.program s)))

(* One random single-op edit round: usually an insert into a randomly
   chosen hot loop's header, sometimes a delete of an instruction a
   previous round inserted (its result is never referenced, so deletion
   always re-verifies). *)
let random_op (s : Session.t) ~(round : int) ~(pick : int)
    ~(inserted : int list) : Edit.op =
  let lids = hot_lids s in
  let lid = List.nth lids (pick mod List.length lids) in
  let fname, header = split_lid lid in
  if round land 1 = 1 && inserted <> [] then
    Edit.Delete_instr { id = List.hd inserted }
  else
    Edit.Insert_instr
      {
        fname;
        block = header;
        at = phi_prefix (Session.program s) fname header;
        text =
          Printf.sprintf "  %%__q%d_%d = add 1, 2" (Session.epoch s) round;
      }

(* (a) Incremental answers are byte-identical to a from-scratch batch run
   of the edited program, for every random edit script. *)
let prop_incremental_equals_batch =
  QCheck.Test.make
    ~name:"random edit scripts: incremental = batch, byte-identical"
    ~count:10
    QCheck.(triple (oneofl Registry.names) (int_bound 2) small_nat)
    (fun (bname, extra_rounds, pick0) ->
      let s = Session.create (Option.get (Registry.find bname)) in
      List.iter (fun q -> ignore (Session.ask s q)) (Session.workload s);
      let inserted = ref [] in
      for round = 0 to extra_rounds do
        let op = random_op s ~round ~pick:(pick0 + round) ~inserted:!inserted in
        match Session.edit s [ op ] with
        | Error e ->
            QCheck.Test.fail_reportf "%s: edit failed: %s" bname
              (Scaf_lint.Diagnostic.to_summary e)
        | Ok (diff, _) -> (
            match op with
            | Edit.Insert_instr _ ->
                inserted := diff.Edit.touched_instrs @ !inserted
            | Edit.Delete_instr _ -> inserted := List.tl !inserted
            | Edit.Replace_loop_body _ -> ())
      done;
      let inc = Session.render_answers s (Session.workload s) in
      let b = Session.baseline s in
      let batch = Session.render_answers b (Session.workload b) in
      if not (String.equal inc batch) then
        QCheck.Test.fail_reportf "%s: incremental/batch answers diverge"
          bname;
      true)

(* The provenance read-set of a cached query: every function reachable
   through its premise closure in the collector graph, widened by the
   value-flow components the invalidation pass itself uses. *)
let closure_funcs (g : Collector.graph) (q : Scaf.Query.t) : string list =
  let seen = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  let rec go key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Collector.node_of g key with
      | None -> ()
      | Some n ->
          List.iter (fun f -> Hashtbl.replace funcs f ()) n.Collector.nfuncs;
          List.iter go n.Collector.npremises
    end
  in
  go (Collector.key_of_query q);
  Hashtbl.fold (fun f () acc -> f :: acc) funcs []

(* (b) An edit to loop L never recomputes a query whose read-set excludes
   L: after the scripted single-loop edit, every workload query whose
   pre-edit provenance closure misses the edited function (and its
   value-flow component) must still hit the cache. *)
let prop_no_foreign_recompute =
  QCheck.Test.make
    ~name:"edit to L recomputes no query whose read-set excludes L" ~count:8
    QCheck.(oneofl Registry.names)
    (fun bname ->
      let p = Option.get (Registry.find bname) in
      let s = Session.create p in
      let qs = Session.workload s in
      List.iter (fun q -> ignore (Session.ask s q)) qs;
      let op = Session.auto_edit s in
      let edited_fn =
        match op with
        | Edit.Insert_instr { fname; _ } -> fname
        | _ -> QCheck.Test.fail_report "auto_edit is an insert"
      in
      let comps = Components.build [ Program.program p ] in
      let near = Components.reach comps ~funcs:[ edited_fn ] ~globals:[] in
      let foreign =
        List.filter
          (fun q ->
            let fs = closure_funcs s.Session.graph q in
            fs <> [] && not (List.exists near fs))
          qs
      in
      (match Session.edit s [ op ] with
      | Error e ->
            QCheck.Test.fail_reportf "%s: edit failed: %s" bname
              (Scaf_lint.Diagnostic.to_summary e)
      | Ok _ -> ());
      Session.reset_counters s;
      List.iter (fun q -> ignore (Session.ask s q)) foreign;
      let c = Session.counters s in
      if c.Session.recomputed > 0 then
        QCheck.Test.fail_reportf
          "%s: %d/%d read-set-disjoint queries recomputed after edit to %s"
          bname c.Session.recomputed c.Session.asked edited_fn;
      (* the property must not hold vacuously on a multi-kernel suite *)
      List.length foreign > 0 || List.length (hot_lids s) <= 1)

let test_epoch_lifecycle () =
  let s = Session.create (Option.get (Registry.find "181.mcf")) in
  checki "fresh session at epoch 0" 0 (Session.epoch s);
  (match Session.edit s [ Session.auto_edit s ] with
  | Error e -> Alcotest.fail (Scaf_lint.Diagnostic.to_summary e)
  | Ok (diff, _) -> checki "diff carries the new epoch" 1 diff.Edit.epoch);
  checki "session advanced" 1 (Session.epoch s);
  (* a failing script must leave the epoch untouched *)
  (match
     Session.edit s [ Edit.Delete_instr { id = max_int } ]
   with
  | Ok _ -> Alcotest.fail "deleting a bogus id must fail"
  | Error _ -> ());
  checki "failed edit leaves epoch" 1 (Session.epoch s)

let test_warm_cache_counters () =
  let s = Session.create (Option.get (Registry.find "429.mcf")) in
  let qs = Session.workload s in
  List.iter (fun q -> ignore (Session.ask s q)) qs;
  Session.reset_counters s;
  List.iter (fun q -> ignore (Session.ask s q)) qs;
  let c = Session.counters s in
  checki "warm re-run asks all" (List.length qs) c.Session.asked;
  checki "warm re-run recomputes none" 0 c.Session.recomputed

let test_invalidation_stats_sane () =
  let s = Session.create (Option.get (Registry.find "164.gzip")) in
  List.iter (fun q -> ignore (Session.ask s q)) (Session.workload s);
  match Session.edit s [ Session.auto_edit s ] with
  | Error e -> Alcotest.fail (Scaf_lint.Diagnostic.to_summary e)
  | Ok (_, st) ->
      checkb "graph has nodes" true (st.Invalidate.nodes > 0);
      checkb "some nodes survive" true
        (st.Invalidate.dirty < st.Invalidate.nodes);
      checkb "some cache entries retained" true (st.Invalidate.retained > 0);
      checkb "evicted bounded by dirty" true
        (st.Invalidate.evicted <= st.Invalidate.dirty)

let suite =
  [
    ( "incremental",
      [
        Alcotest.test_case "epoch lifecycle" `Quick test_epoch_lifecycle;
        Alcotest.test_case "warm cache recomputes nothing" `Quick
          test_warm_cache_counters;
        Alcotest.test_case "invalidation stats sane" `Quick
          test_invalidation_stats_sane;
        QCheck_alcotest.to_alcotest ~long:false prop_incremental_equals_batch;
        QCheck_alcotest.to_alcotest ~long:false prop_no_foreign_recompute;
      ] );
  ]
