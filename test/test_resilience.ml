(** Tests for the misspeculation resilience subsystem: the memory undo
    journal, runtime checkpoint/commit/rollback, in-run squash-and-replay,
    adaptive re-planning, the fault-injection harness (every payload
    variant) and orchestrator fault isolation under chaos. *)

open Scaf
open Scaf_interp
open Scaf_faultinject

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check64 = Alcotest.check Alcotest.int64

(* -- memory journal ------------------------------------------------- *)

let test_memory_journal_undo () =
  let mem = Memory.create () in
  let o = Memory.alloc mem ~size:8 ~kind:(Memory.KHeap 1) ~ctx:[] in
  Memory.store mem o.Memory.base 8 42L;
  Memory.set_journaling mem true;
  let mk = Memory.mark mem in
  Memory.store mem o.Memory.base 8 99L;
  Memory.store mem o.Memory.base 8 100L;
  let o2 = Memory.alloc mem ~size:8 ~kind:(Memory.KHeap 2) ~ctx:[] in
  let base2 = o2.Memory.base in
  Memory.undo_to mem mk;
  check64 "pre-mark value restored" 42L (Memory.load mem o.Memory.base 8);
  checkb "post-mark allocation removed" true
    (Memory.find_addr_opt mem base2 = None);
  (* allocation cursors rewound: a replayed alloc reuses the address *)
  let o3 = Memory.alloc mem ~size:8 ~kind:(Memory.KHeap 3) ~ctx:[] in
  check64 "same base on replay" base2 o3.Memory.base

let test_memory_journal_nested_marks () =
  let mem = Memory.create () in
  let o = Memory.alloc mem ~size:8 ~kind:(Memory.KHeap 1) ~ctx:[] in
  Memory.set_journaling mem true;
  let outer = Memory.mark mem in
  Memory.store mem o.Memory.base 8 1L;
  let inner = Memory.mark mem in
  Memory.store mem o.Memory.base 8 2L;
  Memory.undo_to mem inner;
  check64 "inner undo" 1L (Memory.load mem o.Memory.base 8);
  (* the same object written again after a rollback must re-journal *)
  Memory.store mem o.Memory.base 8 3L;
  Memory.undo_to mem inner;
  check64 "re-journaled after rollback" 1L (Memory.load mem o.Memory.base 8);
  Memory.undo_to mem outer;
  check64 "outer undo" 0L (Memory.load mem o.Memory.base 8)

(* -- runtime checkpoints -------------------------------------------- *)

let test_runtime_commit_matches_loop () =
  let rt = Runtime.create (Memory.create ()) in
  let _ = Runtime.checkpoint rt ~loop_ord:1 in
  Runtime.commit rt ~loop_ord:2;
  checki "mismatched commit is a no-op" 1 (List.length rt.Runtime.stack);
  Runtime.commit rt ~loop_ord:1;
  checki "matching commit pops" 0 (List.length rt.Runtime.stack);
  Runtime.commit rt ~loop_ord:1;
  checki "commit on empty stack is a no-op" 0 (List.length rt.Runtime.stack);
  checki "one commit counted" 1 rt.Runtime.commits

let test_runtime_rollback_restores_state () =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let o = Memory.alloc mem ~size:8 ~kind:(Memory.KHeap 1) ~ctx:[] in
  Memory.store mem o.Memory.base 8 7L;
  let id = Runtime.checkpoint rt ~loop_ord:1 in
  Memory.store mem o.Memory.base 8 9L;
  Runtime.set_heap rt ~addr:o.Memory.base ~heap_tag:5;
  checkb "active before rollback" true (Runtime.is_active rt id);
  Runtime.rollback_to rt id;
  check64 "memory rolled back" 7L (Memory.load mem o.Memory.base 8);
  checki "heap tag rolled back" 0 o.Memory.heap_tag;
  checkb "checkpoint survives for the replay" true (Runtime.is_active rt id);
  checki "rollback counted" 1 rt.Runtime.rollbacks;
  Runtime.disable_tag rt 3L;
  checkb "disabled tag skips its beacon" true
    (try
       Runtime.beacon rt ~tag:3L;
       true
     with Runtime.Misspec _ -> false)

(* -- in-run squash-and-replay --------------------------------------- *)

let test_direct_value_predict_replays_in_run () =
  let r = Harness.run_direct ~seed:1 "value-predict" in
  checkb "correct final result" true r.Harness.ok;
  checkb "misspeculated" true r.Harness.misspeculated;
  checkb "recovered in-run, not by re-planning" true
    (r.Harness.rollbacks >= 1 && r.Harness.replans = 0);
  checkb "not degraded" false r.Harness.degraded

let test_direct_points_to_replans () =
  (* the entry beacon fires outside every checkpoint: only the adaptive
     re-planner can absorb it *)
  let r = Harness.run_direct ~seed:1 "points-to-objects" in
  checkb "correct final result" true r.Harness.ok;
  checki "one assertion blacklisted" 1 r.Harness.replans;
  checkb "second attempt commits" false r.Harness.degraded

let test_commit_balances_checkpoints () =
  (* a *true* assertion: the run commits its checkpoint and never rolls
     back *)
  let prog =
    Scaf_cfg.Progctx.build (Scaf_ir.Parser.parse_exn_msg Harness.direct_src)
  in
  let m = prog.Scaf_cfg.Progctx.m in
  let good =
    {
      Assertion.module_id = "fi-true";
      points = [];
      cost = 1.0;
      conflicts = [];
      payload =
        Assertion.Value_predict { load = Harness.by_dst m "v"; value = 7L };
    }
  in
  let inst =
    Scaf_transform.Instrument.instrument prog
      ~checkpoints:(Harness.all_lids prog) [ good ]
  in
  let r = Eval.run inst.Scaf_transform.Instrument.imod in
  checki "one invocation checkpointed" 1 r.Eval.checkpoints;
  checki "no rollbacks" 0 r.Eval.rollbacks;
  checkb "output intact" true (r.Eval.output = (Eval.run m).Eval.output)

(* -- the harness: every payload variant, >= 20 seeded scenarios ------ *)

let test_direct_cases_all_payloads () =
  List.iter
    (fun case ->
      let r = Harness.run_direct ~seed:3 case in
      checkb (case ^ ": final result equals original") true r.Harness.ok;
      checkb (case ^ ": misspeculation forced") true r.Harness.misspeculated)
    Harness.direct_case_names

let test_harness_all_scenarios_recover () =
  let rs = Harness.run_all ~seed:2026 () in
  checkb ">= 20 scenarios" true (List.length rs >= 20);
  List.iter
    (fun (r : Harness.outcome) ->
      checkb (r.Harness.scenario ^ ": commits or recovers correctly") true
        r.Harness.ok;
      if r.Harness.forced then
        checkb (r.Harness.scenario ^ ": fault actually injected") true
          r.Harness.misspeculated)
    rs;
  (* the perturbations are not all no-ops: some pipeline scenario must
     actually misspeculate and recover *)
  checkb "some pipeline scenario misspeculated" true
    (List.exists
       (fun (r : Harness.outcome) ->
         (not r.Harness.forced) && r.Harness.misspeculated)
       rs)

(* -- orchestrator fault isolation ----------------------------------- *)

let nomodref_free = Response.free (Aresult.RModref Aresult.NoModRef)

let const_module name resp =
  Module_api.make ~name ~kind:Module_api.Memory ~factored:false (fun _ q ->
      match q with
      | Query.Modref _ -> resp
      | Query.Alias _ -> Module_api.no_answer q)

let raising_module name =
  Module_api.make ~name ~kind:Module_api.Memory ~factored:false (fun _ _ ->
      failwith "injected module fault")

let tiny_prog =
  Scaf_cfg.Progctx.build
    (Scaf_ir.Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")

let mq n = Query.modref_instrs ~tr:Query.Same n (n + 1)

let test_isolation_raising_module () =
  let o =
    Orchestrator.create tiny_prog
      (Orchestrator.default_config
         [ raising_module "bad"; const_module "good" nomodref_free ])
  in
  let r = Orchestrator.handle o (mq 100) in
  checkb "query still answered precisely" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checki "fault recorded" 1 (Orchestrator.stats o).Orchestrator.module_faults;
  (* distinct queries (the memo would absorb repeats) trip the breaker *)
  ignore (Orchestrator.handle o (mq 200));
  ignore (Orchestrator.handle o (mq 300));
  checkb "module quarantined" true (Orchestrator.quarantined o = [ "bad" ]);
  ignore (Orchestrator.handle o (mq 400));
  checkb "quarantined module skipped" true
    ((Orchestrator.stats o).Orchestrator.quarantine_skips >= 1);
  checki "three faults total" 3 (Orchestrator.stats o).Orchestrator.module_faults

let test_isolation_success_resets_breaker () =
  let flaky_fails = ref true in
  let flaky =
    Module_api.make ~name:"flaky" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        if !flaky_fails then failwith "flaky" else Module_api.no_answer q)
  in
  let o =
    Orchestrator.create tiny_prog (Orchestrator.default_config [ flaky ])
  in
  ignore (Orchestrator.handle o (mq 100));
  ignore (Orchestrator.handle o (mq 200));
  flaky_fails := false;
  ignore (Orchestrator.handle o (mq 300));
  flaky_fails := true;
  ignore (Orchestrator.handle o (mq 400));
  ignore (Orchestrator.handle o (mq 500));
  (* 2 faults, success, 2 faults: never 3 consecutive *)
  checkb "breaker not tripped" true (Orchestrator.quarantined o = []);
  checki "consecutive tracks the streak" 2
    (Orchestrator.health_of o "flaky").Orchestrator.consecutive

let test_isolation_budget_overrun () =
  let now = ref 0.0 in
  let clock () =
    now := !now +. 1.0;
    !now
  in
  let stalling =
    Module_api.make ~name:"stall" ~kind:Module_api.Memory ~factored:false
      (fun _ _ ->
        now := !now +. 1000.0;
        nomodref_free)
  in
  let o =
    Orchestrator.create tiny_prog
      {
        (Orchestrator.default_config
           [ stalling; const_module "good" nomodref_free ])
        with
        Orchestrator.clock = Some clock;
        module_budget = Some 10.0;
      }
  in
  let r = Orchestrator.handle o (mq 100) in
  checkb "stalled answer discarded, good answer used" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checki "overrun recorded" 1 (Orchestrator.stats o).Orchestrator.module_overruns;
  checki "overrun counts against the module" 1
    (Orchestrator.health_of o "stall").Orchestrator.overruns

let test_chaos_raising_never_aborts () =
  let c =
    Harness.run_chaos ~seed:11 ~p_raise:1.0 "052.alvinn"
  in
  checkb "queries issued" true (c.Harness.c_queries > 0);
  checki "every query answered" c.Harness.c_queries c.Harness.c_answered;
  checkb "faults recorded" true (c.Harness.c_faults > 0);
  checkb "modules quarantined" true (c.Harness.c_quarantined <> [])

let test_chaos_stalling_never_aborts () =
  let c =
    Harness.run_chaos ~seed:12 ~p_delay:1.0 ~module_budget:10.0 "052.alvinn"
  in
  checki "every query answered" c.Harness.c_queries c.Harness.c_answered;
  checkb "overruns recorded" true (c.Harness.c_overruns > 0);
  checkb "stalling modules quarantined" true (c.Harness.c_quarantined <> [])

let test_chaos_mixed_never_aborts () =
  let c =
    Harness.run_chaos ~seed:13 ~p_raise:0.2 ~p_delay:0.2 ~p_corrupt:0.2
      ~module_budget:10.0 "164.gzip"
  in
  checki "every query answered" c.Harness.c_queries c.Harness.c_answered

let test_chaos_corrupt_pipeline_recovers () =
  (* corrupted speculative answers flow into the plan; acting on them must
     misspeculate immediately and recovery must still converge *)
  let b = Option.get (Scaf_suite.Registry.find "052.alvinn") in
  let m = Scaf_suite.Program.program b in
  let p = Scaf_suite.Program.profiles b in
  let prog = p.Scaf_profile.Profiles.ctx in
  let modules =
    Scaf_analysis.Registry.create prog @ Scaf_speculation.Registry.create p
  in
  let wrapped, counters =
    Chaos.wrap_all (Chaos.config ~seed:7 ~p_corrupt:0.5 ()) modules
  in
  let o = Scaf_pdg.Schemes.orchestrate prog wrapped in
  let lids = List.map fst (Scaf_pdg.Nodep.hot_loop_weights p) in
  let reports =
    List.map
      (fun lid ->
        Scaf_pdg.Pdg.run_loop prog ~resolver:(Orchestrator.handle o) lid)
      lids
  in
  let replan ~blacklist =
    let plan = Scaf_transform.Plan.build ~blacklist reports in
    if plan.Scaf_transform.Plan.selected = [] && blacklist <> [] then None
    else
      Some
        (Scaf_transform.Instrument.instrument prog ~checkpoints:lids
           plan.Scaf_transform.Plan.selected)
  in
  let input = Scaf_suite.Program.ref_input b in
  let reference = Eval.run ~input m in
  let a =
    Scaf_transform.Apply.run_adaptive ~original:m ~replan ~input
      ~max_retries:5 ()
  in
  checkb "corruption injected" true
    (List.exists (fun c -> c.Chaos.corrupts > 0) counters);
  checkb "final result equals original" true
    (a.Scaf_transform.Apply.final.Eval.output = reference.Eval.output
    && Int64.equal a.Scaf_transform.Apply.final.Eval.ret reference.Eval.ret)

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "memory: journal undo" `Quick
          test_memory_journal_undo;
        Alcotest.test_case "memory: nested marks" `Quick
          test_memory_journal_nested_marks;
        Alcotest.test_case "runtime: commit matches loop" `Quick
          test_runtime_commit_matches_loop;
        Alcotest.test_case "runtime: rollback restores state" `Quick
          test_runtime_rollback_restores_state;
        Alcotest.test_case "replay: value-predict recovers in-run" `Quick
          test_direct_value_predict_replays_in_run;
        Alcotest.test_case "replay: points-to escapes to re-planner" `Quick
          test_direct_points_to_replans;
        Alcotest.test_case "replay: commit balances checkpoints" `Quick
          test_commit_balances_checkpoints;
        Alcotest.test_case "harness: every payload variant recovers" `Quick
          test_direct_cases_all_payloads;
        Alcotest.test_case "harness: all seeded scenarios recover" `Slow
          test_harness_all_scenarios_recover;
        Alcotest.test_case "isolation: raising module" `Quick
          test_isolation_raising_module;
        Alcotest.test_case "isolation: success resets breaker" `Quick
          test_isolation_success_resets_breaker;
        Alcotest.test_case "isolation: budget overrun" `Quick
          test_isolation_budget_overrun;
        Alcotest.test_case "chaos: raising ensemble never aborts" `Slow
          test_chaos_raising_never_aborts;
        Alcotest.test_case "chaos: stalling ensemble never aborts" `Slow
          test_chaos_stalling_never_aborts;
        Alcotest.test_case "chaos: mixed faults never abort" `Slow
          test_chaos_mixed_never_aborts;
        Alcotest.test_case "chaos: corrupted answers recover" `Slow
          test_chaos_corrupt_pipeline_recovers;
      ] );
  ]
