(** Tests for the 13 memory-analysis modules: each is exercised directly on
    a crafted program, plus ensemble behaviour through a CAF orchestrator. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_analysis

let checkb = Alcotest.check Alcotest.bool

let build src =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  Progctx.build m

let caf prog = Orchestrator.create prog (Orchestrator.default_config (Registry.create prog))

let find prog p =
  let r = ref (-1) in
  Irmod.iter_instrs prog.Progctx.m (fun _ _ i -> if p i then r := i.Instr.id);
  !r

let dst prog d = find prog (fun i -> i.Instr.dst = Some d)

let result_of (r : Response.t) = r.Response.result

let alias_q ?loop ?dr ~fname ~tr prog p1 s1 p2 s2 =
  ignore prog;
  Query.alias ?loop ?dr ~fname ~tr (p1, s1) (p2, s2)

(* -- basic-aa ------------------------------------------------------ *)

let basic_src =
  {|
global @g 32
global @h 8
func @main() {
entry:
  %a = alloca 16
  %p = gep @g, 0
  %q = gep @g, 8
  %r = gep @g, 4
  %m = call @malloc(8)
  store 8, %p, 1
  store 8, %q, 2
  store 8, %a, 3
  store 8, %m, 4
  ret
}
|}

let test_basic_aa () =
  let prog = build basic_src in
  let o = caf prog in
  let q v1 s1 v2 s2 =
    result_of (Orchestrator.handle o (alias_q ~fname:"main" ~tr:Query.Same prog v1 s1 v2 s2))
  in
  let reg = Value.reg in
  checkb "distinct offsets NoAlias" true
    (q (reg "p") 8 (reg "q") 8 = Aresult.RAlias Aresult.NoAlias);
  checkb "same ptr MustAlias" true
    (q (reg "p") 8 (reg "p") 8 = Aresult.RAlias Aresult.MustAlias);
  checkb "overlap stays conservative" true
    (Aresult.pr (q (reg "p") 8 (reg "r") 8) = 1);
  checkb "global vs alloca NoAlias" true
    (q (reg "p") 8 (reg "a") 8 = Aresult.RAlias Aresult.NoAlias);
  checkb "alloca vs malloc NoAlias" true
    (q (reg "a") 8 (reg "m") 8 = Aresult.RAlias Aresult.NoAlias);
  checkb "distinct globals NoAlias" true
    (q (Value.global "g") 8 (Value.global "h") 8 = Aresult.RAlias Aresult.NoAlias);
  checkb "contained is SubAlias" true
    (q (reg "p") 4 (reg "p") 8 = Aresult.RAlias Aresult.SubAlias)

(* -- underlying-objects-aa (phi tracing) --------------------------- *)

let test_underlying_objects () =
  let prog =
    build
      {|
global @g 8
func @main(%c) {
entry:
  %a = alloca 8
  %b = alloca 8
  condbr %c, t, f
t:
  br join
f:
  br join
join:
  %p = phi [t: %a], [f: %b]
  store 8, %p, 1
  store 8, @g, 2
  ret
}
|}
  in
  let o = caf prog in
  let r =
    Orchestrator.handle o
      (alias_q ~fname:"main" ~tr:Query.Same prog (Value.reg "p") 8
         (Value.global "g") 8)
  in
  checkb "phi of allocas vs global: NoAlias" true
    (result_of r = Aresult.RAlias Aresult.NoAlias)

(* -- scev-aa ------------------------------------------------------- *)

let scev_src =
  {|
global @arr 800
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 8
  %p = gep @arr, %o
  store 8, %p, %i
  %o2 = add %o, 0
  %q = gep @arr, %o2
  %v = load 8, %q
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}

let test_scev_cross_iteration () =
  let prog = build scev_src in
  let o = caf prog in
  let p = Value.reg "p" and q = Value.reg "q" in
  (* same iteration, same index: MustAlias *)
  let r1 =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Same prog p 8 q 8)
  in
  checkb "same-iter same-index MustAlias" true
    (result_of r1 = Aresult.RAlias Aresult.MustAlias);
  (* different iterations: stride 8 >= size 8: NoAlias *)
  let r2 =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Before prog p 8 q 8)
  in
  checkb "cross-iter strided NoAlias" true
    (result_of r2 = Aresult.RAlias Aresult.NoAlias)

let test_scev_small_stride_overlaps () =
  (* stride 4 with 8-byte accesses: adjacent iterations overlap *)
  let prog =
    build
      {|
global @arr 800
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 4
  %p = gep @arr, %o
  store 8, %p, %i
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let r =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Before prog
         (Value.reg "p") 8 (Value.reg "p") 8)
  in
  checkb "overlapping stride stays MayAlias" true
    (Aresult.pr (result_of r) = 1)

(* -- induction-range-aa (different ivs, congruence) ---------------- *)

let test_induction_range_real () =
  let prog =
    build
      {|
global @aos 1600
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %j = phi [entry: 5], [loop: %j2]
  %io = mul %i, 16
  %p = gep @aos, %io
  store 8, %p, %i
  %jo = mul %j, 16
  %jo8 = add %jo, 8
  %q = gep @aos, %jo8
  %v = load 8, %q
  %i2 = add %i, 1
  %j2 = add %j, 3
  %c = icmp slt %i2, 90
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  (* field 0 via iv i vs field 8 via unrelated iv j: congruence mod 16 *)
  let r =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Same prog
         (Value.reg "p") 8 (Value.reg "q") 8)
  in
  checkb "disjoint fields across ivs: NoAlias" true
    (result_of r = Aresult.RAlias Aresult.NoAlias);
  let r2 =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Before prog
         (Value.reg "p") 8 (Value.reg "q") 8)
  in
  checkb "also cross-iteration" true
    (result_of r2 = Aresult.RAlias Aresult.NoAlias)

(* -- kill-flow-aa (static) ----------------------------------------- *)

let test_kill_flow_static () =
  let prog =
    build
      {|
global @a 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  store 8, @a, %i
  %v = load 8, @a
  %i2 = add %i, 1
  store 8, @a, %i2
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let i3 =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "i2"; _ } -> true
        | _ -> false)
  in
  let i2 = dst prog "v" in
  (* the flow from the latch store to next iteration's load is killed by
     the unconditional store at the loop head *)
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Before i3 i2)
  in
  checkb "statically killed" true
    (result_of r = Aresult.RModref Aresult.NoModRef);
  checkb "cost free" true (Response.Options.has_free r.Response.options)

let test_kill_flow_respects_bypass () =
  (* same but the killing store is conditional: no kill *)
  let prog =
    build
      {|
global @a 8
func @main(%c0) {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  condbr %c0, doit, skip
doit:
  store 8, @a, %i
  br skip
skip:
  %v = load 8, @a
  br latch
latch:
  %i2 = add %i, 1
  store 8, @a, %i2
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let i3 =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "i2"; _ } -> true
        | _ -> false)
  in
  let i2 = dst prog "v" in
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Before i3 i2)
  in
  checkb "bypass prevents kill" true
    (result_of r <> Aresult.RModref Aresult.NoModRef)

(* -- callsite-aa --------------------------------------------------- *)

let test_callsite_aa () =
  let prog =
    build
      {|
global @g 8
global @h 8
declare @pure readnone
func @main() {
entry:
  %x = call @pure(1)
  store 8, @g, %x
  %d = call @malloc(16)
  call @memset(%d, 0, 16)
  %v = load 8, @g
  ret
}
|}
  in
  let o = caf prog in
  let pure_call = dst prog "x" in
  let g_store =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "g"; _ } -> true
        | _ -> false)
  in
  let memset =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Call { callee = "memset"; _ } -> true
        | _ -> false)
  in
  (* readnone call has no footprint *)
  let r1 =
    Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same pure_call g_store)
  in
  checkb "readnone NoModRef" true (result_of r1 = Aresult.RModref Aresult.NoModRef);
  (* memset touches only its argument's memory, disjoint from @g *)
  let r2 =
    Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same memset g_store)
  in
  checkb "memset vs global NoModRef" true
    (result_of r2 = Aresult.RModref Aresult.NoModRef)

(* -- loop-fresh-aa -------------------------------------------------- *)

let test_loop_fresh () =
  let prog =
    build
      {|
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %b = call @malloc(16)
  store 8, %b, %i
  %v = load 8, %b
  call @free(%b)
  %i2 = add %i, 1
  %c = icmp slt %i2, 80
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let b = Value.reg "b" in
  let r =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Before prog b 8 b 8)
  in
  checkb "per-iteration object: cross-iter NoAlias" true
    (result_of r = Aresult.RAlias Aresult.NoAlias);
  (* but captured objects are not iteration-private *)
  let prog2 =
    build
      {|
global @slot 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %b = call @malloc(16)
  store 8, @slot, %b
  store 8, %b, %i
  %i2 = add %i, 1
  %c = icmp slt %i2, 80
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o2 = caf prog2 in
  let r2 =
    Orchestrator.handle o2
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Before prog2 b 8 b 8)
  in
  checkb "captured object stays MayAlias" true (Aresult.pr (result_of r2) = 1)

(* -- no-capture-source-aa ------------------------------------------- *)

let test_no_capture_source () =
  let prog =
    build
      {|
func @main(%unknown) {
entry:
  %a = alloca 8
  store 8, %a, 1
  store 8, %unknown, 2
  %v = load 8, %a
  ret %v
}
|}
  in
  let o = caf prog in
  let r =
    Orchestrator.handle o
      (alias_q ~fname:"main" ~tr:Query.Same prog (Value.reg "a") 8
         (Value.reg "unknown") 8)
  in
  checkb "uncaptured alloca vs arg: NoAlias" true
    (result_of r = Aresult.RAlias Aresult.NoAlias);
  (* once the address escapes, no such luck *)
  let prog2 =
    build
      {|
global @slot 8
func @main(%unknown) {
entry:
  %a = alloca 8
  store 8, @slot, %a
  store 8, %a, 1
  store 8, %unknown, 2
  %v = load 8, %a
  ret %v
}
|}
  in
  let o2 = caf prog2 in
  let r2 =
    Orchestrator.handle o2
      (alias_q ~fname:"main" ~tr:Query.Same prog2 (Value.reg "a") 8
         (Value.reg "unknown") 8)
  in
  checkb "escaped alloca stays MayAlias" true (Aresult.pr (result_of r2) = 1)

(* -- global-malloc-aa / heap confinement ---------------------------- *)

let test_global_malloc_partitions () =
  let prog =
    build
      {|
global @sa 8
global @sb 8
func @main() {
entry:
  %a = call @malloc(64)
  store 8, @sa, %a
  %b = call @malloc(64)
  store 8, @sb, %b
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %pa = load 8, @sa
  %qa = gep %pa, 8
  store 8, %qa, %i
  %pb = load 8, @sb
  %qb = gep %pb, 8
  %v = load 8, %qb
  %i2 = add %i, 1
  %c = icmp slt %i2, 70
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let r =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Same prog
         (Value.reg "qa") 8 (Value.reg "qb") 8)
  in
  checkb "disjoint partitions NoAlias" true
    (result_of r = Aresult.RAlias Aresult.NoAlias);
  checkb "free of charge" true (Response.Options.has_free r.Response.options)

(* -- unique-paths-aa ------------------------------------------------ *)

let test_unique_paths_mustalias () =
  let prog =
    build
      {|
global @base 8
func @init() {
entry:
  %b = call @malloc(32)
  store 8, @base, %b
  ret
}
func @main() {
entry:
  call @init()
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %p1 = load 8, @base
  %p2 = load 8, @base
  store 8, %p1, %i
  %v = load 8, %p2
  %i2 = add %i, 1
  %c = icmp slt %i2, 70
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let r =
    Orchestrator.handle o
      (alias_q ~loop:"main:loop" ~fname:"main" ~tr:Query.Same prog
         (Value.reg "p1") 8 (Value.reg "p2") 8)
  in
  checkb "two loads of a stable slot: MustAlias" true
    (result_of r = Aresult.RAlias Aresult.MustAlias)

(* -- semi-local-fun-aa ---------------------------------------------- *)

let test_semi_local_summaries () =
  let prog =
    build
      {|
global @g 8
global @h 8
func @touch_g() {
entry:
  store 8, @g, 1
  ret
}
func @main() {
entry:
  %x = call @touch_g()
  store 8, @h, 2
  %v = load 8, @h
  ret
}
|}
  in
  let o = caf prog in
  let call = dst prog "x" in
  let h_store =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "h"; _ } -> true
        | _ -> false)
  in
  let g_store =
    find prog (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "g"; _ } -> true
        | _ -> false)
  in
  (* the call writes only @g: no dependence with the @h store *)
  let r =
    Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same call h_store)
  in
  checkb "callee summary excludes @h" true
    (result_of r = Aresult.RModref Aresult.NoModRef);
  (* but it does conflict with @g *)
  let r2 =
    Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same call g_store)
  in
  checkb "callee summary includes @g" true
    (result_of r2 <> Aresult.RModref Aresult.NoModRef)

(* -- ptrexpr / induction / affine units ----------------------------- *)

let test_ptrexpr_resolution () =
  let prog = build basic_src in
  let r = Ptrexpr.resolve prog ~fname:"main" (Value.reg "q") in
  (match r with
  | [ { Ptrexpr.base = Ptrexpr.BGlobal "g"; off = Some 8L } ] -> ()
  | _ -> Alcotest.failf "unexpected resolution %a" (Fmt.Dump.list Ptrexpr.pp) r);
  let rm = Ptrexpr.resolve prog ~fname:"main" (Value.reg "m") in
  match rm with
  | [ { Ptrexpr.base = Ptrexpr.BMalloc _; off = Some 0L } ] -> ()
  | _ -> Alcotest.fail "malloc resolution"

let test_induction_detection () =
  let prog = build scev_src in
  let li = Option.get (Progctx.loops_of prog "main") in
  let loop = List.hd li.Loops.loops in
  let ivs = Induction.of_loop prog ~fname:"main" li loop in
  match ivs with
  | [ iv ] ->
      Alcotest.(check string) "iv reg" "i" iv.Induction.reg;
      Alcotest.(check int64) "step" 1L iv.Induction.step
  | _ -> Alcotest.failf "expected one iv, got %d" (List.length ivs)

let test_affine_form () =
  let prog = build scev_src in
  let li = Option.get (Progctx.loops_of prog "main") in
  let loop = List.hd li.Loops.loops in
  let env = Affine.make_env prog ~fname:"main" li loop in
  match Affine.of_value env (Value.reg "p") with
  | Some f ->
      checkb "root is @arr" true (Value.equal f.Affine.root (Value.global "arr"));
      Alcotest.(check int64) "stride" 8L (Affine.stride env f)
  | None -> Alcotest.fail "no affine form"

let test_escape_analysis () =
  let prog =
    build
      {|
global @slot 8
func @main() {
entry:
  %a = call @malloc(8)
  %b = call @malloc(8)
  store 8, @slot, %a
  store 8, %b, 3
  call @free(%b)
  ret
}
|}
  in
  let a = dst prog "a" and b = dst prog "b" in
  (match Escape.captures_of_site prog a with
  | Some [ { Escape.ckind = `Stored; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Stored capture for %a");
  match Escape.captures_of_site prog b with
  | Some [] -> ()
  | _ -> Alcotest.fail "free must not count as a capture"

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "basic-aa" `Quick test_basic_aa;
        Alcotest.test_case "underlying-objects-aa" `Quick
          test_underlying_objects;
        Alcotest.test_case "scev-aa cross-iteration" `Quick
          test_scev_cross_iteration;
        Alcotest.test_case "scev-aa small stride" `Quick
          test_scev_small_stride_overlaps;
        Alcotest.test_case "induction-range-aa" `Quick
          test_induction_range_real;
        Alcotest.test_case "kill-flow-aa static kill" `Quick
          test_kill_flow_static;
        Alcotest.test_case "kill-flow-aa respects bypass" `Quick
          test_kill_flow_respects_bypass;
        Alcotest.test_case "callsite-aa" `Quick test_callsite_aa;
        Alcotest.test_case "loop-fresh-aa" `Quick test_loop_fresh;
        Alcotest.test_case "no-capture-source-aa" `Quick
          test_no_capture_source;
        Alcotest.test_case "global-malloc-aa" `Quick
          test_global_malloc_partitions;
        Alcotest.test_case "unique-paths-aa" `Quick test_unique_paths_mustalias;
        Alcotest.test_case "semi-local-fun-aa" `Quick test_semi_local_summaries;
        Alcotest.test_case "ptrexpr resolution" `Quick test_ptrexpr_resolution;
        Alcotest.test_case "induction detection" `Quick
          test_induction_detection;
        Alcotest.test_case "affine form" `Quick test_affine_form;
        Alcotest.test_case "escape analysis" `Quick test_escape_analysis;
      ] );
  ]
