(** Tests for the canonicalizing sharded cache (Qcache), the latency
    reservoir, and the domain-parallel batch engine: canonicalization and
    mirror-query sharing, second-chance eviction, the closure-key
    regression ([mctrl] views must never become table keys), and the
    qcheck equivalences (parallel batch = sequential; ask q = ask
    (mirror q)). *)

open Scaf
open Scaf_ir
open Scaf_pdg

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let nomodref_free = Response.free (Aresult.RModref Aresult.NoModRef)

let mloc ?(size = 8) ptr : Value.t * int = (ptr, size)

let alias_q ?dr ~tr p1 p2 =
  Query.alias ?dr ~fname:"main" ~tr (mloc p1) (mloc p2)

let mirror (q : Query.t) : Query.t =
  match q with
  | Query.Alias a ->
      Query.Alias
        {
          a with
          Query.a1 = a.Query.a2;
          a2 = a.Query.a1;
          atr = Query.flip_temporal a.Query.atr;
        }
  | Query.Modref _ -> q

(* -- canonicalization ----------------------------------------------- *)

let test_canonical_alias_sharing () =
  let c = Qcache.create () in
  let q = alias_q ~tr:Query.Before (Value.Global "a") (Value.Global "b") in
  Qcache.add_q c q nomodref_free;
  (* the mirrored form must land on the same entry *)
  (match Qcache.find_q c (mirror q) with
  | Some r ->
      checkb "mirrored query shares the entry" true
        (r.Response.result = Aresult.RModref Aresult.NoModRef)
  | None -> Alcotest.fail "mirrored alias query missed");
  let s = Qcache.snapshot c in
  checki "one entry, not two" 1 s.Qcache.Snapshot.entries;
  checki "one hit" 1 s.Qcache.Snapshot.hits;
  checki "counted as canonical hit" 1 s.Qcache.Snapshot.canonical_hits;
  (* the straight form hits without the canonical marker *)
  ignore (Qcache.find_q c q);
  let s = Qcache.snapshot c in
  checki "two hits" 2 s.Qcache.Snapshot.hits;
  checki "still one canonical hit" 1 s.Qcache.Snapshot.canonical_hits

let test_canonical_same_temporal () =
  (* Same is its own flip: both operand orders still share one entry *)
  let c = Qcache.create () in
  let q = alias_q ~tr:Query.Same (Value.Global "x") (Value.Global "y") in
  Qcache.add_q c q nomodref_free;
  checkb "mirror of a Same query hits" true (Qcache.find_q c (mirror q) <> None);
  checki "one entry" 1 (Qcache.snapshot c).Qcache.Snapshot.entries

let test_modref_not_mirrored () =
  (* modref is directional: src/dst swapped is a different question *)
  let c = Qcache.create () in
  Qcache.add_q c (Query.modref_instrs ~tr:Query.Same 1 2) nomodref_free;
  checkb "swapped modref misses" true
    (Qcache.find_q c (Query.modref_instrs ~tr:Query.Same 2 1) = None)

let test_asymmetric_modref_counters () =
  (* a directional modref hit must never be credited to canonicalization *)
  let c = Qcache.create () in
  let q = Query.modref_instrs ~tr:Query.Before 3 9 in
  Qcache.add_q c q nomodref_free;
  checkb "direct hit" true (Qcache.find_q c q <> None);
  checkb "swapped+flipped form misses" true
    (Qcache.find_q c (Query.modref_instrs ~tr:Query.After 9 3) = None);
  let s = Qcache.snapshot c in
  checki "one hit" 1 s.Qcache.Snapshot.hits;
  checki "one miss" 1 s.Qcache.Snapshot.misses;
  checki "no canonical hits on directional modref" 0
    s.Qcache.Snapshot.canonical_hits

(* Canonicalization must never conflate the Mod direction with the Ref
   direction: modref(i1, tr, i2) asks whether i1 touches what i2 accesses;
   the swapped (and temporally flipped) query is a different question. *)
let prop_modref_direction_never_conflated =
  QCheck.Test.make ~name:"canonicalization keeps Mod vs Ref direction"
    ~count:200
    QCheck.(
      triple (int_bound 50) (int_bound 50)
        (oneofl [ Query.Before; Query.Same; Query.After ]))
    (fun (i1, i2, tr) ->
      QCheck.assume (i1 <> i2);
      let q = Query.modref_instrs ~tr i1 i2 in
      let swapped =
        Query.modref_instrs ~tr:(Query.flip_temporal tr) i2 i1
      in
      let c = Qcache.create ~shards:1 () in
      Qcache.add_q c q nomodref_free;
      Qcache.key_of ~epoch:0 q <> Qcache.key_of ~epoch:0 swapped
      && Qcache.find_q c swapped = None
      && (Qcache.snapshot c).Qcache.Snapshot.canonical_hits = 0)

(* -- epoch stamping and the invalidation walk ----------------------- *)

(* Entries from superseded program states must be unreachable by
   construction: the same query at a different epoch is a different
   key, so a lookup after an epoch bump never sees stale answers. *)
let test_epoch_separates_entries () =
  let c = Qcache.create ~shards:1 () in
  let q = Query.modref_instrs ~tr:Query.Same 1 2 in
  Qcache.add_q ~epoch:0 c q nomodref_free;
  checkb "hit at its own epoch" true (Qcache.find_q ~epoch:0 c q <> None);
  checkb "miss at the next epoch" true (Qcache.find_q ~epoch:1 c q = None);
  checkb "keys differ across epochs" true
    (Qcache.key_of ~epoch:0 q <> Qcache.key_of ~epoch:1 q);
  let k = Option.get (Qcache.key_of ~epoch:3 q) in
  checki "key remembers its epoch" 3 (Qcache.key_epoch k)

let test_invalidate_evicts_and_restamps () =
  let c = Qcache.create ~shards:1 () in
  let q1 = Query.modref_instrs ~tr:Query.Same 1 2 in
  let q2 = Query.modref_instrs ~tr:Query.Same 3 4 in
  Qcache.add_q ~epoch:0 c q1 nomodref_free;
  Qcache.add_q ~epoch:0 c q2 nomodref_free;
  let dirty q =
    match q with Query.Modref { minstr = 1; _ } -> true | _ -> false
  in
  let evicted, retained = Qcache.invalidate c ~dirty ~next_epoch:1 in
  checki "one entry evicted" 1 evicted;
  checki "one entry retained" 1 retained;
  checkb "dirty entry gone at the new epoch" true
    (Qcache.find_q ~epoch:1 c q1 = None);
  checkb "survivor restamped to the new epoch" true
    (Qcache.find_q ~epoch:1 c q2 <> None);
  checkb "survivor unreachable at the old epoch" true
    (Qcache.find_q ~epoch:0 c q2 = None)

(* -- key safety: control-flow views hold closures ------------------- *)

let tiny_prog =
  Scaf_cfg.Progctx.build
    (Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")

let ctrl_view () = Option.get (Scaf_cfg.Progctx.ctrl_of tiny_prog "main")

let test_ctrl_query_has_no_key () =
  let q = Query.modref_instrs ~ctrl:(ctrl_view ()) ~tr:Query.Same 1 2 in
  checkb "mctrl query refused as key" true (Qcache.key_of ~epoch:0 q = None);
  checkb "plain modref keyed" true
    (Qcache.key_of ~epoch:0 (Query.modref_instrs ~tr:Query.Same 1 2) <> None)

let test_ctrl_query_roundtrip_regression () =
  (* regression: a speculative-view query must round-trip through the
     orchestrator (twice: the second resolution must not consult a memo
     keyed on a closure) without Invalid_argument "compare: functional
     value" *)
  let evals = ref 0 in
  let m =
    Module_api.make ~name:"m" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        incr evals;
        match q with Query.Modref _ -> nomodref_free | _ -> Module_api.no_answer q)
  in
  let o = Orchestrator.create tiny_prog (Orchestrator.default_config [ m ]) in
  let q = Query.modref_instrs ~ctrl:(ctrl_view ()) ~tr:Query.Same 1 2 in
  let r1 = Orchestrator.handle o q in
  let r2 = Orchestrator.handle o q in
  checkb "answered" true (r1.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "same answer" true (Aresult.equal r1.Response.result r2.Response.result);
  (* never memoized: both resolutions evaluated the module *)
  checki "view queries bypass the cache" 2 !evals

(* -- bounded capacity and second-chance eviction -------------------- *)

let mq n = Query.modref_instrs ~tr:Query.Same n (n + 1)

let test_bounded_eviction () =
  let c = Qcache.create ~shards:1 ~capacity:4 () in
  List.iter (fun n -> Qcache.add_q c (mq n) nomodref_free) [ 0; 1; 2; 3; 4; 5 ];
  checki "capacity respected" 4 (Qcache.length c);
  checkb "evictions counted" true
    ((Qcache.snapshot c).Qcache.Snapshot.evictions >= 2)

let test_second_chance_protects_hot_entry () =
  let c = Qcache.create ~shards:1 ~capacity:4 () in
  List.iter (fun n -> Qcache.add_q c (mq n) nomodref_free) [ 0; 1; 2; 3 ];
  (* touch the oldest entry: its reference bit must save it once *)
  checkb "hot entry present" true (Qcache.find_q c (mq 0) <> None);
  Qcache.add_q c (mq 4) nomodref_free;
  checkb "hot entry survived the scan" true (Qcache.find_q c (mq 0) <> None);
  checkb "cold head evicted instead" true (Qcache.find_q c (mq 1) = None)

let test_clear_keeps_counters () =
  let c = Qcache.create () in
  Qcache.add_q c (mq 1) nomodref_free;
  ignore (Qcache.find_q c (mq 1));
  Qcache.clear c;
  checki "empty after clear" 0 (Qcache.length c);
  checki "hit counter kept" 1 (Qcache.snapshot c).Qcache.Snapshot.hits

(* -- shared cache across orchestrators ------------------------------ *)

let test_shared_cache_across_orchestrators () =
  let evals = ref 0 in
  let m =
    Module_api.make ~name:"m" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        incr evals;
        match q with Query.Modref _ -> nomodref_free | _ -> Module_api.no_answer q)
  in
  let cache = Qcache.create () in
  let o1 = Orchestrator.create ~cache tiny_prog (Orchestrator.default_config [ m ]) in
  let o2 = Orchestrator.create ~cache tiny_prog (Orchestrator.default_config [ m ]) in
  ignore (Orchestrator.handle o1 (mq 7));
  (* o1's answer sits in its private L1 batch until published *)
  Orchestrator.flush_cache o1;
  ignore (Orchestrator.handle o2 (mq 7));
  checki "second orchestrator reused the first's entry" 1 !evals

(* -- the latency reservoir ------------------------------------------ *)

let test_reservoir_bounded_exact_count () =
  let r = Reservoir.create ~capacity:16 () in
  for i = 1 to 1000 do
    Reservoir.add r (float_of_int i)
  done;
  checki "exact count" 1000 (Reservoir.count r);
  checki "sample bounded" 16 (List.length (Reservoir.samples r));
  let p50 = Reservoir.percentile r 50.0 in
  checkb "percentile inside observed range" true (p50 >= 1.0 && p50 <= 1000.0)

let test_reservoir_small_stream_kept_whole () =
  let r = Reservoir.create ~capacity:16 () in
  List.iter (Reservoir.add r) [ 3.0; 1.0; 2.0 ];
  checki "count" 3 (Reservoir.count r);
  checki "all retained" 3 (List.length (Reservoir.samples r));
  Alcotest.check (Alcotest.float 1e-9) "p0 is the min" 1.0
    (Reservoir.percentile r 0.0);
  Alcotest.check (Alcotest.float 1e-9) "p100 is the max" 3.0
    (Reservoir.percentile r 100.0)

let test_reservoir_merge_counts () =
  let a = Reservoir.create ~capacity:8 () in
  let b = Reservoir.create ~capacity:8 () in
  for i = 1 to 20 do
    Reservoir.add a (float_of_int i)
  done;
  for i = 1 to 5 do
    Reservoir.add b (float_of_int i)
  done;
  Reservoir.merge ~into:a b;
  checki "merged count exact" 25 (Reservoir.count a);
  checki "sample still bounded" 8 (List.length (Reservoir.samples a))

(* -- ask_many and the parallel batch path ---------------------------- *)

let resp_equal (a : Response.t) (b : Response.t) : bool =
  Aresult.equal a.Response.result b.Response.result
  && Response.Sset.equal a.Response.provenance b.Response.provenance
  && a.Response.options = b.Response.options

let test_ask_many_order () =
  let o =
    Orchestrator.create tiny_prog
      (Orchestrator.default_config
         [
           Module_api.make ~name:"echo" ~kind:Module_api.Memory ~factored:false
             (fun _ q ->
               match q with
               | Query.Modref m when m.Query.minstr mod 2 = 0 -> nomodref_free
               | _ -> Module_api.no_answer q);
         ])
  in
  let qs = List.init 10 mq in
  let rs = Orchestrator.ask_many o qs in
  checki "one response per query" 10 (List.length rs);
  List.iteri
    (fun i (r : Response.t) ->
      checkb
        (Printf.sprintf "response %d answers query %d" i i)
        true
        (if i mod 2 = 0 then r.Response.result = Aresult.RModref Aresult.NoModRef
         else Aresult.is_bottom r.Response.result))
    rs

(* Random suite programs: the parallel batch path must return exactly the
   sequential responses, at every job count. *)
let prop_parallel_equals_sequential =
  let bench_names = Scaf_suite.Registry.names in
  QCheck.Test.make ~name:"batch path: jobs in {1,2,4} = sequential" ~count:8
    QCheck.(pair (oneofl bench_names) small_nat)
    (fun (bname, skip) ->
      let b = Option.get (Scaf_suite.Registry.find bname) in
      let profiles = Scaf_suite.Program.profiles b in
      let prog = profiles.Scaf_profile.Profiles.ctx in
      let lids = List.map fst (Nodep.hot_loop_weights profiles) in
      match lids with
      | [] -> true
      | _ ->
          let lid = List.nth lids (skip mod List.length lids) in
          let qs =
            List.map (Pdg.to_query lid) (Pdg.queries_of_loop prog lid)
          in
          let seq =
            let r = (Schemes.scaf_scheme profiles).Schemes.spawn () in
            List.map r.Schemes.resolve qs
          in
          List.for_all
            (fun jobs ->
              let scheme = Schemes.scaf_scheme profiles in
              let par =
                Scheduler.with_pool ~jobs (fun pool ->
                    Scheduler.map pool ~state:scheme.Schemes.spawn
                      ~f:(fun (r : Schemes.resolver) q -> r.Schemes.resolve q)
                      qs)
              in
              List.for_all2 resp_equal seq par)
            [ 1; 2; 4 ])

(* -- the work-stealing scheduler and the two-tier cache -------------- *)

let test_scheduler_order_and_reuse () =
  Scheduler.with_pool ~jobs:4 (fun pool ->
      checki "pool size" 4 (Scheduler.size pool);
      let out =
        Scheduler.map pool
          ~state:(fun () -> ())
          ~f:(fun () i -> i * i)
          (List.init 100 Fun.id)
      in
      checkb "results reassembled in submission order" true
        (out = List.init 100 (fun i -> i * i));
      (* the same pool must serve a second batch (no respawned domains) *)
      let out2 =
        Scheduler.map pool
          ~state:(fun () -> ())
          ~f:(fun () i -> i + 1)
          (List.init 7 Fun.id)
      in
      checkb "pool reusable across batches" true
        (out2 = List.init 7 (fun i -> i + 1));
      checkb "empty batch" true
        (Scheduler.map pool ~state:(fun () -> ()) ~f:(fun () i -> i) [] = []);
      checkb "steal counter monotone" true (Scheduler.steals pool >= 0))

let test_scheduler_exception_propagates () =
  let raised =
    try
      Scheduler.with_pool ~jobs:2 (fun pool ->
          ignore
            (Scheduler.map pool
               ~state:(fun () -> ())
               ~f:(fun () i -> if i = 5 then failwith "boom" else i)
               (List.init 10 Fun.id)));
      false
    with Failure m -> m = "boom"
  in
  checkb "worker exception re-raised at the submitter" true raised

let test_scheduler_shutdown_idempotent () =
  let pool = Scheduler.create ~jobs:2 () in
  Scheduler.shutdown pool;
  Scheduler.shutdown pool;
  checkb "map after shutdown refused" true
    (try
       ignore (Scheduler.map pool ~state:(fun () -> ()) ~f:(fun () i -> i) [ 1 ]);
       false
     with Invalid_argument _ -> true)

(* Resolve [qs] at [epoch] through a per-worker two-tier front: L1 probe,
   shared probe, else compute and record. The determinism contract makes
   any hit byte-equal to a recompute, so the responses must match a
   cache-free sequential pass no matter how L1 publishes, steals and
   generation bumps interleave. *)
let resolve_two_tier ~jobs ~l1_capacity ~flush_every ~epoch
    (profiles : Scaf_profile.Profiles.t) (c : Qcache.t) (qs : Query.t list) :
    Response.t list =
  let scheme = Schemes.scaf_scheme profiles in
  Scheduler.with_pool ~jobs (fun pool ->
      Scheduler.map pool
        ~state:(fun () ->
          ( Qcache.Local.create ~capacity:l1_capacity ~flush_every c,
            scheme.Schemes.spawn () ))
        ~f:(fun ((l1, r) : Qcache.Local.t * Schemes.resolver) q ->
          match Qcache.Local.find_q ~epoch l1 q with
          | Some resp -> resp
          | None ->
              let resp = r.Schemes.resolve q in
              (match Qcache.key_of ~epoch q with
              | Some k -> Qcache.Local.add l1 k resp
              | None -> ());
              resp)
        qs)

let hot_queries (profiles : Scaf_profile.Profiles.t) : Query.t list =
  let prog = profiles.Scaf_profile.Profiles.ctx in
  List.concat_map
    (fun (lid, _) -> List.map (Pdg.to_query lid) (Pdg.queries_of_loop prog lid))
    (Nodep.hot_loop_weights profiles)

(* Every suite program, 4 worker domains, small L1s flushed in tiny
   batches, and a generation bump halfway through: the answers must be
   exactly the sequential ones. *)
let test_all_programs_two_tier_jobs4 () =
  List.iter
    (fun bname ->
      let b = Option.get (Scaf_suite.Registry.find bname) in
      let profiles = Scaf_suite.Program.profiles b in
      let qs = hot_queries profiles in
      if qs <> [] then begin
        let seq =
          let r = (Schemes.scaf_scheme profiles).Schemes.spawn () in
          List.map r.Schemes.resolve qs
        in
        let c = Qcache.create () in
        let n = List.length qs in
        let first = List.filteri (fun i _ -> i < n / 2) qs in
        let second = List.filteri (fun i _ -> i >= n / 2) qs in
        let r1 =
          resolve_two_tier ~jobs:4 ~l1_capacity:64 ~flush_every:2 ~epoch:0
            profiles c first
        in
        ignore (Qcache.invalidate c ~dirty:(fun _ -> false) ~next_epoch:1);
        let r2 =
          resolve_two_tier ~jobs:4 ~l1_capacity:64 ~flush_every:2 ~epoch:1
            profiles c second
        in
        List.iter2
          (fun a b ->
            checkb (bname ^ ": two-tier parallel = sequential") true
              (resp_equal a b))
          seq (r1 @ r2)
      end)
    Scaf_suite.Registry.names

(* Random L1 capacity / publication batch size / job count / program, with
   a mid-stream epoch bump: still byte-equal to sequential. *)
let prop_l1_interleaving_equals_sequential =
  let bench_names = Scaf_suite.Registry.names in
  QCheck.Test.make
    ~name:"two-tier interleavings (publish/steal/epoch bump) = sequential"
    ~count:6
    QCheck.(
      pair (oneofl bench_names)
        (triple
           (oneofl [ 1; 2; 7; 32 ])
           (oneofl [ 2; 4; 8192 ])
           (oneofl [ 2; 3; 4 ])))
    (fun (bname, (flush_every, l1_capacity, jobs)) ->
      let b = Option.get (Scaf_suite.Registry.find bname) in
      let profiles = Scaf_suite.Program.profiles b in
      let qs = hot_queries profiles in
      match qs with
      | [] -> true
      | _ ->
          let seq =
            let r = (Schemes.scaf_scheme profiles).Schemes.spawn () in
            List.map r.Schemes.resolve qs
          in
          let c = Qcache.create () in
          let n = List.length qs in
          let first = List.filteri (fun i _ -> i < n / 2) qs in
          let second = List.filteri (fun i _ -> i >= n / 2) qs in
          let r1 =
            resolve_two_tier ~jobs ~l1_capacity ~flush_every ~epoch:0 profiles
              c first
          in
          ignore (Qcache.invalidate c ~dirty:(fun _ -> false) ~next_epoch:1);
          let r2 =
            resolve_two_tier ~jobs ~l1_capacity ~flush_every ~epoch:1 profiles
              c second
          in
          List.for_all2 resp_equal seq (r1 @ r2))

(* Counter exactness across 4 domains: each work item is self-contained
   (probe-miss, add, probe-hit on a distinct key), so every snapshot
   counter has one provably exact value no matter how the items were
   stolen between deques. *)
let test_four_domain_counter_exactness () =
  let c = Qcache.create () in
  let n = 100 in
  let outs =
    Scheduler.with_pool ~jobs:4 (fun pool ->
        Scheduler.map pool
          ~state:(fun () -> Qcache.Local.create ~capacity:512 ~flush_every:1 c)
          ~f:(fun l1 i ->
            let k = Option.get (Qcache.key_of ~epoch:0 (mq i)) in
            let first = Qcache.Local.find l1 k in
            Qcache.Local.add l1 k nomodref_free;
            let second = Qcache.Local.find l1 k in
            (first = None, second <> None))
          (List.init n Fun.id))
  in
  checkb "every first probe missed" true (List.for_all fst outs);
  checkb "every second probe hit the owner's L1" true (List.for_all snd outs);
  let s = Qcache.snapshot c in
  checki "misses: one per item" n s.Qcache.Snapshot.misses;
  checki "l1 hits: one per item" n s.Qcache.Snapshot.l1_hits;
  checki "no shared-store hits" 0 s.Qcache.Snapshot.hits;
  checki "publishes = adds" n s.Qcache.Snapshot.publishes;
  checki "entries = distinct queries" n s.Qcache.Snapshot.entries;
  checki "lookups sums every tier" (2 * n) (Qcache.Snapshot.lookups s);
  checki "no canonical hits on modref keys" 0 s.Qcache.Snapshot.canonical_hits;
  checki "no measured waits without a wait clock" 0 s.Qcache.Snapshot.waits;
  (* steal attribution is explicit: the engine reports the pool's delta *)
  Qcache.note_steals c 3;
  checki "note_steals surfaces in the snapshot" 3
    (Qcache.snapshot c).Qcache.Snapshot.steals

(* Canonicalized alias queries: ask q = ask (mirror q). *)
let prop_mirror_alias_equal =
  let arb_val =
    QCheck.oneofl
      [
        Value.Global "a";
        Value.Global "b";
        Value.Reg "i";
        Value.Reg "v";
        Value.Int 0L;
        Value.Int 8L;
        Value.Null;
      ]
  in
  let arb_tr = QCheck.oneofl [ Query.Before; Query.Same; Query.After ] in
  let arb_sz = QCheck.oneofl [ 1; 4; 8 ] in
  let bench = Option.get (Scaf_suite.Registry.find "181.mcf") in
  let profiles = lazy (Scaf_suite.Program.profiles bench) in
  QCheck.Test.make ~name:"canonicalized alias: ask q = ask (mirror q)"
    ~count:60
    QCheck.(quad arb_val arb_sz arb_val arb_tr)
    (fun (p1, s1, p2, tr) ->
      let profiles = Lazy.force profiles in
      let r = (Schemes.scaf_scheme profiles).Schemes.spawn () in
      let q = Query.alias ~fname:"main" ~tr (p1, s1) (p2, 8) in
      let rq = r.Schemes.resolve q in
      let rm = r.Schemes.resolve (mirror q) in
      Aresult.equal rq.Response.result rm.Response.result
      && Response.Options.cheapest_cost rq.Response.options
         = Response.Options.cheapest_cost rm.Response.options)

let suite =
  [
    ( "qcache",
      [
        Alcotest.test_case "canonical alias sharing" `Quick
          test_canonical_alias_sharing;
        Alcotest.test_case "Same temporal mirrors" `Quick
          test_canonical_same_temporal;
        Alcotest.test_case "modref not mirrored" `Quick test_modref_not_mirrored;
        Alcotest.test_case "asymmetric modref counters" `Quick
          test_asymmetric_modref_counters;
        QCheck_alcotest.to_alcotest prop_modref_direction_never_conflated;
        Alcotest.test_case "epochs separate entries" `Quick
          test_epoch_separates_entries;
        Alcotest.test_case "invalidate evicts and restamps" `Quick
          test_invalidate_evicts_and_restamps;
        Alcotest.test_case "ctrl query has no key" `Quick
          test_ctrl_query_has_no_key;
        Alcotest.test_case "ctrl query round-trip (regression)" `Quick
          test_ctrl_query_roundtrip_regression;
        Alcotest.test_case "bounded eviction" `Quick test_bounded_eviction;
        Alcotest.test_case "second chance protects hot entry" `Quick
          test_second_chance_protects_hot_entry;
        Alcotest.test_case "clear keeps counters" `Quick test_clear_keeps_counters;
        Alcotest.test_case "shared cache across orchestrators" `Quick
          test_shared_cache_across_orchestrators;
      ] );
    ( "reservoir",
      [
        Alcotest.test_case "bounded sample, exact count" `Quick
          test_reservoir_bounded_exact_count;
        Alcotest.test_case "small stream kept whole" `Quick
          test_reservoir_small_stream_kept_whole;
        Alcotest.test_case "merge keeps exact counts" `Quick
          test_reservoir_merge_counts;
      ] );
    ( "parallel",
      [
        Alcotest.test_case "ask_many preserves order" `Quick test_ask_many_order;
        Alcotest.test_case "scheduler order and pool reuse" `Quick
          test_scheduler_order_and_reuse;
        Alcotest.test_case "scheduler exception propagates" `Quick
          test_scheduler_exception_propagates;
        Alcotest.test_case "scheduler shutdown idempotent" `Quick
          test_scheduler_shutdown_idempotent;
        Alcotest.test_case "all programs: two-tier @ jobs=4 = sequential"
          `Quick test_all_programs_two_tier_jobs4;
        Alcotest.test_case "4-domain counter exactness" `Quick
          test_four_domain_counter_exactness;
        QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
        QCheck_alcotest.to_alcotest prop_l1_interleaving_equals_sequential;
        QCheck_alcotest.to_alcotest prop_mirror_alias_equal;
      ] );
  ]
