(** End-to-end test of the paper's motivating example (Figures 1, 5, 6).

    A rare (never profiled) path skips the store [i1] that kills the
    cross-iteration flow from [i3] to [i2]. Statically the kill cannot be
    proven (the rare path bypasses [i1]); control speculation alone cannot
    disprove the dependence (neither endpoint is speculatively dead);
    composition by confluence therefore fails. SCAF resolves it: control
    speculation re-issues the query with a speculative control-flow view
    and kill-flow proves the kill under it. *)

open Scaf
open Scaf_ir
open Scaf_profile
open Scaf_pdg

let checkb = Alcotest.check Alcotest.bool

let src =
  {|
global @a 8
global @b 8

func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %r = call @input(%i)
  %c = icmp ne %r, 0
  condbr %c, rare, common
rare:
  store 8, @b, 7
  br cont
common:
  store 8, @a, %i          ; i1: kills the flow when executed
  br cont
cont:
  %v = load 8, @a          ; i2: reads a
  store 8, @b, %v
  br latch
latch:
  %i2 = add %i, 1
  store 8, @a, %i2         ; i3: cross-iteration flow source
  %d = icmp slt %i2, 200
  condbr %d, loop, exit
exit:
  ret
}
|}

let setup () =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  let profiles = Profiler.profile_module m in
  let prog = profiles.Profiles.ctx in
  let find_store value_dst =
    (* identify i1/i3 by stored value register, i2 by being the @a load *)
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg v; ptr = Value.Global "a"; _ }
          when String.equal v value_dst ->
            r := i.Instr.id
        | _ -> ());
    !r
  in
  let find_load () =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Load { ptr = Value.Global "a"; _ } -> r := i.Instr.id
        | _ -> ());
    !r
  in
  let i1 = find_store "i" in
  let i3 = find_store "i2" in
  let i2 = find_load () in
  checkb "found i1" true (i1 >= 0);
  checkb "found i2" true (i2 >= 0);
  checkb "found i3" true (i3 >= 0);
  (profiles, prog, i1, i2, i3)

let lid = "main:loop"

let query i3 i2 = Query.modref_instrs ~loop:lid ~tr:Query.Before i3 i2

let test_profile_facts () =
  let profiles, prog, _, _, _ = setup () in
  ignore prog;
  (* the rare block never executed *)
  checkb "rare is spec-dead" true
    (Edge_profile.spec_dead profiles.Profiles.edges ~func:"main" ~label:"rare");
  checkb "common not dead" false
    (Edge_profile.spec_dead profiles.Profiles.edges ~func:"main"
       ~label:"common");
  (* the loop is hot *)
  checkb "loop is hot" true
    (List.mem lid (Time_profile.hot_loops profiles.Profiles.time))

let test_dep_not_observed () =
  let profiles, _, _, i2, i3 = setup () in
  (* i3 -> i2 cross-iteration flow never manifests: i1 always kills it *)
  checkb "i3->i2 cross not observed" false
    (Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i3 ~dst:i2
       ~cross:true);
  (* but i3 -> i1 output dep does manifest cross-iteration *)
  let _, _, i1, _, _ = setup () in
  ignore i1

let test_caf_cannot () =
  let profiles, _, _, i2, i3 = setup () in
  let r = Schemes.caf profiles in
  let resp = r.Schemes.resolve (query i3 i2) in
  checkb "CAF cannot disprove" false (Pdg.affordable_nodep resp)

let test_confluence_cannot () =
  let profiles, _, _, i2, i3 = setup () in
  let r = Schemes.confluence profiles in
  let resp = r.Schemes.resolve (query i3 i2) in
  checkb "confluence cannot disprove" false (Pdg.affordable_nodep resp)

let test_scaf_disproves () =
  let profiles, _, _, i2, i3 = setup () in
  let r = Schemes.scaf profiles in
  let resp = r.Schemes.resolve (query i3 i2) in
  checkb "SCAF disproves" true (Pdg.affordable_nodep resp);
  (* the collaboration involved control speculation and kill-flow *)
  let prov = resp.Response.provenance in
  checkb "control-spec participated" true
    (Response.Sset.mem "control-spec" prov);
  checkb "kill-flow participated" true (Response.Sset.mem "kill-flow-aa" prov);
  (* the assertion is the dead rare block, at zero validation cost *)
  checkb "has free option" true (Response.Options.has_free resp.Response.options);
  match Response.Options.cheapest resp.Response.options with
  | Some (a :: _) ->
      Alcotest.(check string) "module" "control-spec" a.Assertion.module_id;
      (match a.Assertion.payload with
      | Assertion.Ctrl_block_dead { label; _ } ->
          Alcotest.(check string) "dead block" "rare" label
      | _ -> Alcotest.fail "expected dead-block assertion")
  | _ -> Alcotest.fail "expected an assertion option"

let test_memspec_covers_expensively () =
  let profiles, _, _, i2, i3 = setup () in
  let r = Schemes.memory_speculation profiles in
  let resp = r.Schemes.resolve (query i3 i2) in
  checkb "memspec disproves" true (Pdg.affordable_nodep resp);
  (* ... but at much higher cost than SCAF's free answer *)
  checkb "memspec is expensive" true (Response.Options.cheapest_cost resp.Response.options > 1000.0)

let test_intra_dep_respected () =
  (* i1 -> i2 intra-iteration flow is real: nobody may disprove it *)
  let profiles, _, i1, i2, _ = setup () in
  let scaf = Schemes.scaf profiles in
  let q = Query.modref_instrs ~loop:lid ~tr:Query.Same i1 i2 in
  let resp = scaf.Schemes.resolve q in
  checkb "real dep respected" false (Pdg.affordable_nodep resp);
  (* and it is observed during profiling *)
  checkb "observed" true
    (Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i1 ~dst:i2
       ~cross:false)

let test_pdg_scheme_order () =
  (* %NoDep must be monotone: CAF <= Confluence <= SCAF <= MemSpec-ish *)
  let profiles, prog, _, _, _ = setup () in
  let pct r =
    (Nodep.evaluate ~bname:"motivating" profiles r).Nodep.weighted_nodep
  in
  ignore prog;
  let caf = pct (Schemes.caf profiles) in
  let conf = pct (Schemes.confluence profiles) in
  let scaf = pct (Schemes.scaf profiles) in
  checkb
    (Printf.sprintf "caf(%.1f) <= conf(%.1f)" caf conf)
    true (caf <= conf +. 1e-9);
  checkb
    (Printf.sprintf "conf(%.1f) < scaf(%.1f)" conf scaf)
    true (conf < scaf)

let suite =
  [
    ( "motivating-example",
      [
        Alcotest.test_case "profile facts" `Quick test_profile_facts;
        Alcotest.test_case "dep not observed" `Quick test_dep_not_observed;
        Alcotest.test_case "CAF cannot disprove" `Quick test_caf_cannot;
        Alcotest.test_case "confluence cannot disprove" `Quick
          test_confluence_cannot;
        Alcotest.test_case "SCAF disproves collaboratively" `Quick
          test_scaf_disproves;
        Alcotest.test_case "memory speculation covers, expensively" `Quick
          test_memspec_covers_expensively;
        Alcotest.test_case "real dependence respected" `Quick
          test_intra_dep_respected;
        Alcotest.test_case "scheme precision order" `Quick
          test_pdg_scheme_order;
      ] );
  ]
