(** Tests for CFG construction, dominators, post-dominators, loops,
    reachability and control-flow views. *)

open Scaf_ir
open Scaf_cfg

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A diamond with a loop around it:
   entry -> header; header -> (then | else) -> join; join -> (header | exit) *)
let diamond_loop_src =
  {|
global @a 8
func @main() {
entry:
  br header
header:
  %i = phi [entry: 0], [join: %i2]
  %c = icmp slt %i, 10
  condbr %c, then_, else_
then_:
  store 8, @a, 1
  br join
else_:
  store 8, @a, 2
  br join
join:
  %i2 = add %i, 1
  %d = icmp slt %i2, 20
  condbr %d, header, exit
exit:
  ret %i2
}
|}

let cfg_of src =
  let m = Parser.parse_exn_msg src in
  Cfg.of_func (Option.get (Irmod.find_func m "main"))

let test_cfg_structure () =
  let cfg = cfg_of diamond_loop_src in
  checki "blocks" 6 (Cfg.num_blocks cfg);
  let i = Cfg.index_of cfg in
  Alcotest.(check (list int))
    "header succs"
    [ i "then_"; i "else_" ]
    cfg.Cfg.succs.(i "header");
  Alcotest.(check (list int))
    "join preds"
    [ i "then_"; i "else_" ]
    cfg.Cfg.preds.(i "join")

let test_dominators () =
  let cfg = cfg_of diamond_loop_src in
  let dom = Dom.compute cfg in
  let i = Cfg.index_of cfg in
  checkb "entry dom all" true (Dom.dominates dom (i "entry") (i "exit"));
  checkb "header dom join" true (Dom.dominates dom (i "header") (i "join"));
  checkb "then not dom join" false (Dom.dominates dom (i "then_") (i "join"));
  checkb "join not dom header" false (Dom.dominates dom (i "join") (i "header"));
  checkb "self dom" true (Dom.dominates dom (i "join") (i "join"))

let test_post_dominators () =
  let cfg = cfg_of diamond_loop_src in
  let pdom = Dom.compute_post cfg in
  let i = Cfg.index_of cfg in
  checkb "exit pdom header" true (Dom.dominates pdom (i "exit") (i "header"));
  checkb "join pdom then" true (Dom.dominates pdom (i "join") (i "then_"));
  checkb "join pdom header" true (Dom.dominates pdom (i "join") (i "header"));
  checkb "then not pdom header" false
    (Dom.dominates pdom (i "then_") (i "header"))

let test_unreachable_block () =
  let cfg =
    cfg_of
      "func @main() {\nentry:\n  ret\ndead:\n  br dead2\ndead2:\n  br dead\n}"
  in
  Alcotest.(check (list int)) "unreachable" [ 1; 2 ] (Cfg.unreachable_blocks cfg);
  let dom = Dom.compute cfg in
  checkb "dead not reachable" false (Dom.reachable dom 1);
  checkb "dead dominates nothing" false (Dom.dominates dom 1 2)

let test_loops_basic () =
  let cfg = cfg_of diamond_loop_src in
  let li = Loops.compute cfg in
  checki "one loop" 1 (List.length li.Loops.loops);
  let l = List.hd li.Loops.loops in
  let i = Cfg.index_of cfg in
  checki "header" (i "header") l.Loops.header;
  checkb "contains then" true (Loops.contains l (i "then_"));
  checkb "contains join" true (Loops.contains l (i "join"));
  checkb "not contains exit" false (Loops.contains l (i "exit"));
  checkb "not contains entry" false (Loops.contains l (i "entry"));
  Alcotest.(check (list int)) "latches" [ i "join" ] l.Loops.latches;
  checki "depth" 1 l.Loops.depth;
  Alcotest.(check (list (pair int int)))
    "exits"
    [ (i "join", i "exit") ]
    (Loops.exits li l)

let nested_src =
  {|
func @main() {
entry:
  br outer
outer:
  %i = phi [entry: 0], [outer_latch: %i2]
  br inner
inner:
  %j = phi [outer: 0], [inner: %j2]
  %j2 = add %j, 1
  %c = icmp slt %j2, 5
  condbr %c, inner, outer_latch
outer_latch:
  %i2 = add %i, 1
  %d = icmp slt %i2, 5
  condbr %d, outer, exit
exit:
  ret
}
|}

let test_loops_nested () =
  let cfg = cfg_of nested_src in
  let li = Loops.compute cfg in
  checki "two loops" 2 (List.length li.Loops.loops);
  let i = Cfg.index_of cfg in
  let outer =
    Option.get (List.find_opt (fun l -> l.Loops.header = i "outer") li.Loops.loops)
  in
  let inner =
    Option.get (List.find_opt (fun l -> l.Loops.header = i "inner") li.Loops.loops)
  in
  checki "outer depth" 1 outer.Loops.depth;
  checki "inner depth" 2 inner.Loops.depth;
  Alcotest.(check (option string))
    "inner parent" (Some outer.Loops.lid) inner.Loops.parent;
  checkb "outer contains inner hdr" true (Loops.contains outer (i "inner"));
  (match li.Loops.innermost.(i "inner") with
  | Some l -> Alcotest.(check string) "innermost of inner" inner.Loops.lid l.Loops.lid
  | None -> Alcotest.fail "no innermost");
  match li.Loops.innermost.(i "outer_latch") with
  | Some l -> Alcotest.(check string) "innermost of latch" outer.Loops.lid l.Loops.lid
  | None -> Alcotest.fail "no innermost"

let test_instr_dominance () =
  let m = Parser.parse_exn_msg diamond_loop_src in
  let f = Option.get (Irmod.find_func m "main") in
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  (* store in then_ vs add in join *)
  let find_store v =
    let r = ref (-1) in
    Func.iter_instrs f (fun _ (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Int x; _ } when Int64.equal x v ->
            r := i.Instr.id
        | _ -> ());
    !r
  in
  let find_dst d =
    let r = ref (-1) in
    Func.iter_instrs f (fun _ (i : Instr.t) ->
        if i.Instr.dst = Some d then r := i.Instr.id);
    !r
  in
  let st1 = find_store 1L in
  let i2 = find_dst "i2" in
  let iphi = find_dst "i" in
  checkb "phi dom store" true (Dom.dominates_instr dom cfg iphi st1);
  checkb "store not dom i2" false (Dom.dominates_instr dom cfg st1 i2);
  checkb "phi dom i2" true (Dom.dominates_instr dom cfg iphi i2);
  let pdom = Dom.compute_post cfg in
  checkb "i2 pdom store" true (Dom.post_dominates_instr pdom cfg i2 st1);
  checkb "store not pdom phi" false (Dom.post_dominates_instr pdom cfg st1 iphi)

let test_ctrl_filtered () =
  let cfg = cfg_of diamond_loop_src in
  let i = Cfg.index_of cfg in
  let static = Ctrl.of_cfg cfg in
  checkb "then live statically" true (static.Ctrl.live (i "then_"));
  (* kill the else_ path, as control speculation would *)
  let spec = Ctrl.filtered cfg ~dead:(fun b -> b = i "else_") in
  checkb "else dead" false (spec.Ctrl.live (i "else_"));
  checkb "then live" true (spec.Ctrl.live (i "then_"));
  (* under the speculative view, then_ dominates join *)
  checkb "then dom join (spec)" true
    (Dom.dominates spec.Ctrl.dom (i "then_") (i "join"));
  checkb "then dom join (static) is false" false
    (Dom.dominates static.Ctrl.dom (i "then_") (i "join"))

let test_reach_basic () =
  let cfg = cfg_of diamond_loop_src in
  let i = Cfg.index_of cfg in
  let succs b = cfg.Cfg.succs.(b) in
  checkb "entry reaches exit" true
    (Reach.reaches ~succs ~from:(i "entry") ~target:(i "exit") ());
  checkb "exit not reaches entry" false
    (Reach.reaches ~succs ~from:(i "exit") ~target:(i "entry") ());
  checkb "avoid join blocks exit" false
    (Reach.reaches ~succs
       ~block_ok:(fun b -> b <> i "join")
       ~from:(i "entry") ~target:(i "exit") ())

let test_path_avoiding () =
  let cfg = cfg_of diamond_loop_src in
  let i = Cfg.index_of cfg in
  let succs b = cfg.Cfg.succs.(b) in
  let pt b pos = { Reach.blk = i b; pos } in
  (* From header exit to join entry, avoiding then_'s store: possible via
     else_. *)
  checkb "diamond has alternative" true
    (Reach.path_avoiding ~succs ~src:(pt "header" max_int)
       ~dst:(Reach.entry_of (i "join"))
       ~kill:(pt "then_" 0) ());
  (* Avoiding the join add: impossible to reach exit. *)
  checkb "join is a choke point" false
    (Reach.path_avoiding ~succs ~src:(pt "header" max_int)
       ~dst:(Reach.entry_of (i "exit"))
       ~kill:(pt "join" 0) ());
  (* Same-block: src pos 0, dst pos 2, killer at pos 1 blocks. *)
  checkb "same-block killer blocks" false
    (Reach.path_avoiding ~succs
       ~src:{ Reach.blk = i "join"; pos = 0 }
       ~dst:{ Reach.blk = i "join"; pos = 2 }
       ~kill:{ Reach.blk = i "join"; pos = 1 }
       ());
  (* Same-block killer after dst does not block. *)
  checkb "killer after dst ok" true
    (Reach.path_avoiding ~succs
       ~src:{ Reach.blk = i "join"; pos = 0 }
       ~dst:{ Reach.blk = i "join"; pos = 1 }
       ~kill:{ Reach.blk = i "join"; pos = 2 }
       ())

(* qcheck: on random DAG-ish graphs, dominance is consistent with exhaustive
   path enumeration: a dominates b iff removing a disconnects b from entry. *)
let arb_graph =
  let open QCheck in
  let gen =
    Gen.(
      let* n = int_range 2 12 in
      let* edges =
        list_size (int_range 1 (2 * n))
          (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, edges))
  in
  make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen

let prop_dom_vs_cut =
  QCheck.Test.make ~name:"dominance equals cut-vertex property" ~count:200
    arb_graph (fun (n, edges) ->
      let succs_tbl = Array.make n [] in
      List.iter
        (fun (a, b) ->
          if not (List.mem b succs_tbl.(a)) then
            succs_tbl.(a) <- b :: succs_tbl.(a))
        edges;
      let succs i = succs_tbl.(i) in
      let dom = Dom.compute_generic ~n ~entry:0 ~succs in
      let reachable_avoiding avoid target =
        if target = 0 then avoid <> 0
        else begin
          let seen = Array.make n false in
          let rec go b =
            if b <> avoid && not seen.(b) then begin
              seen.(b) <- true;
              List.iter go (succs b)
            end
          in
          if avoid <> 0 then go 0;
          seen.(target)
        end
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b && Dom.reachable dom b && Dom.reachable dom a then begin
            let d = Dom.dominates dom a b in
            let cut = not (reachable_avoiding a b) in
            if d <> cut then ok := false
          end
        done
      done;
      !ok)

(* -- dominance-based SSA validation --------------------------------- *)

let ssa_errs src = Ssa.check_full (Parser.parse_exn_msg src)

let test_ssa_accepts_diamond_loop () =
  checki "well-formed SSA" 0 (List.length (ssa_errs diamond_loop_src))

let test_ssa_def_must_dominate_use () =
  (* %x is defined on only one arm of a diamond: structurally verifiable,
     but the def does not dominate the join-point use *)
  let errs =
    ssa_errs
      "func @f() {\nentry:\n  condbr 1, a, b\na:\n  %x = add 1, 1\n  br c\n\
       b:\n  br c\nc:\n  ret %x\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "not dominated by its definition")
       errs)

let test_ssa_self_use_rejected () =
  (* the verifier's def-anywhere scan accepts %x = add %x, 1; dominance
     (irreflexive on the defining instruction) must not *)
  let errs = ssa_errs "func @f() {\nentry:\n  %x = add %x, 1\n  ret\n}" in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "not dominated by its definition")
       errs)

let test_ssa_phi_arm_checked_at_pred () =
  (* arm values are evaluated at the predecessor's terminator: %x flowing
     in from block b is fine for arm [a: %x] but not for arm [b: %x] *)
  let errs =
    ssa_errs
      "func @f() {\nentry:\n  condbr 1, a, b\na:\n  %x = add 1, 1\n  br c\n\
       b:\n  br c\nc:\n  %p = phi [a: %x], [b: %x]\n  ret %p\n}"
  in
  checki "exactly the b arm is rejected" 1 (List.length errs);
  checkb "names the arm" true
    (Astring_contains.contains (List.hd errs).Verify.what "not dominated by its definition")

let test_ssa_loop_carried_phi_ok () =
  (* the canonical loop-carried phi: %i2 defined below the phi, flowing in
     through the latch terminator — legal SSA *)
  let errs =
    ssa_errs
      "func @f() {\nentry:\n  br loop\nloop:\n  %i = phi [entry: 0], [loop: \
       %i2]\n  %i2 = add %i, 1\n  %c = icmp slt %i2, 9\n  condbr %c, loop, \
       exit\nexit:\n  ret\n}"
  in
  checki "accepted" 0 (List.length errs)

let test_ssa_check_full_exn_raises () =
  match
    Ssa.check_full_exn
      (Parser.parse_exn_msg
         "func @f() {\nentry:\n  %x = add %x, 1\n  ret\n}")
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    ( "cfg",
      [
        Alcotest.test_case "structure" `Quick test_cfg_structure;
        Alcotest.test_case "dominators" `Quick test_dominators;
        Alcotest.test_case "post-dominators" `Quick test_post_dominators;
        Alcotest.test_case "unreachable blocks" `Quick test_unreachable_block;
        Alcotest.test_case "loops basic" `Quick test_loops_basic;
        Alcotest.test_case "loops nested" `Quick test_loops_nested;
        Alcotest.test_case "instruction dominance" `Quick test_instr_dominance;
        Alcotest.test_case "speculative ctrl view" `Quick test_ctrl_filtered;
        Alcotest.test_case "reach basic" `Quick test_reach_basic;
        Alcotest.test_case "path avoiding killer" `Quick test_path_avoiding;
        QCheck_alcotest.to_alcotest prop_dom_vs_cut;
      ] );
    ( "ssa",
      [
        Alcotest.test_case "accepts diamond+loop" `Quick
          test_ssa_accepts_diamond_loop;
        Alcotest.test_case "def must dominate use" `Quick
          test_ssa_def_must_dominate_use;
        Alcotest.test_case "self-use rejected" `Quick test_ssa_self_use_rejected;
        Alcotest.test_case "phi arm checked at predecessor" `Quick
          test_ssa_phi_arm_checked_at_pred;
        Alcotest.test_case "loop-carried phi accepted" `Quick
          test_ssa_loop_carried_phi_ok;
        Alcotest.test_case "check_full_exn raises" `Quick
          test_ssa_check_full_exn_raises;
      ] );
  ]
