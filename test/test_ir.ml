(** Tests for the MIR: lexer, parser, printer round-trip, builder, verifier. *)

open Scaf_ir

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let sample_src =
  {|
; a tiny program
global @g 8
global @table 64 init [0: 5, 8: 7]

declare @ext readonly

func @main() {
entry:
  %a = alloca 16
  %n = add 0, 10
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %p = gep %a, %i
  store 8, %p, %i
  %v = load 8, %p
  %c = icmp slt %i, %n
  condbr %c, latch, exit
latch:
  %i2 = add %i, 1
  br loop
exit:
  ret %v
}
|}

let parse () = Parser.parse_exn_msg sample_src

let test_lexer_tokens () =
  let toks = Lexer.tokenize "%x = add @g, -42 ; comment\nret" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  check
    (Alcotest.testable
       (Fmt.Dump.list Lexer.pp_token)
       (List.equal Stdlib.( = )))
    "tokens" kinds
    [
      Lexer.REG "x";
      Lexer.EQUALS;
      Lexer.IDENT "add";
      Lexer.GLOBAL "g";
      Lexer.COMMA;
      Lexer.INT (-42L);
      Lexer.IDENT "ret";
      Lexer.EOF;
    ]

let test_lexer_lines () =
  match Lexer.tokenize "a\nb\n  c" with
  | [ a; b; c; _eof ] ->
      check Alcotest.int "line a" 1 a.line;
      check Alcotest.int "line b" 2 b.line;
      check Alcotest.int "line c" 3 c.line
  | _ -> Alcotest.fail "expected 4 tokens"

let test_lexer_error () =
  match Lexer.tokenize "a $ b" with
  | exception Lexer.Lex_error (_, 1) -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_parse_module () =
  let m = parse () in
  check Alcotest.int "globals" 2 (List.length m.Irmod.globals);
  check Alcotest.int "decls" 1 (List.length m.Irmod.decls);
  check Alcotest.int "funcs" 1 (List.length m.Irmod.funcs);
  let f = Option.get (Irmod.find_func m "main") in
  check Alcotest.int "blocks" 4 (List.length f.Func.blocks)

let test_parse_global_init () =
  let m = parse () in
  let g = Option.get (Irmod.find_global m "table") in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int64))
    "init" [ (0, 5L); (8, 7L) ] g.Irmod.ginit

let test_parse_ids_unique () =
  let m = parse () in
  let ids = ref [] in
  Irmod.iter_instrs m (fun _ _ i -> ids := i.Instr.id :: !ids);
  let sorted = List.sort_uniq Stdlib.compare !ids in
  check Alcotest.int "unique ids" (List.length !ids) (List.length sorted)

let test_parse_error_line () =
  match Parser.parse "func @f() {\nentry:\n  %x = bogus 1\n  ret\n}" with
  | exception Parser.Parse_error (_, 3) -> ()
  | exception Parser.Parse_error (_, l) ->
      Alcotest.failf "wrong line %d" l
  | _ -> Alcotest.fail "expected parse error"

let test_roundtrip () =
  let m = parse () in
  let printed = Irmod.to_string m in
  let m2 = Parser.parse_exn_msg printed in
  let printed2 = Irmod.to_string m2 in
  check Alcotest.string "print/parse/print fixpoint" printed printed2

let test_verify_ok () =
  let m = parse () in
  check Alcotest.int "no errors" 0 (List.length (Verify.check m))

let verify_errs src =
  let m = Parser.parse_exn_msg src in
  Verify.check m

let test_verify_undefined_reg () =
  let errs =
    verify_errs "func @f() {\nentry:\n  %x = add %y, 1\n  ret %x\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "undefined register")
       errs)

let test_verify_double_assign () =
  let errs =
    verify_errs
      "func @f() {\nentry:\n  %x = add 1, 1\n  %x = add 2, 2\n  ret %x\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "assigned more than once")
       errs)

let test_verify_bad_label () =
  let errs = verify_errs "func @f() {\nentry:\n  br nowhere\n}" in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "unknown label")
       errs)

let test_verify_phi_nonpred () =
  let errs =
    verify_errs
      "func @f() {\nentry:\n  br b\nb:\n  %x = phi [entry: 1], [nowhere: 2]\n\
       \  ret %x\n}"
  in
  checkb "caught" true (errs <> [])

let test_verify_phi_missing_arm () =
  let errs =
    verify_errs
      "func @f() {\nentry:\n  condbr 1, a, b\na:\n  br c\nb:\n  br c\nc:\n\
       \  %x = phi [a: 1]\n  ret %x\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "missing arm")
       errs)

let test_verify_unknown_callee () =
  let errs = verify_errs "func @f() {\nentry:\n  %x = call @nope()\n  ret\n}" in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "unknown function")
       errs)

let test_verify_intrinsic_callee_ok () =
  let errs =
    verify_errs "func @f() {\nentry:\n  %x = call @malloc(8)\n  ret\n}"
  in
  check Alcotest.int "no errors" 0 (List.length errs)

let test_verify_duplicate_ids () =
  (* ids are parser-assigned, so forge the collision on the records *)
  let m = parse () in
  let clobber (f : Func.t) =
    {
      f with
      Func.blocks =
        List.map
          (fun (b : Block.t) ->
            {
              b with
              Block.instrs =
                List.map
                  (fun (i : Instr.t) -> { i with Instr.id = 1 })
                  b.Block.instrs;
            })
          f.Func.blocks;
    }
  in
  let m = { m with Irmod.funcs = List.map clobber m.Irmod.funcs } in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "duplicate instruction id")
       (Verify.check m))

let test_verify_duplicate_labels () =
  let m = Parser.parse_exn_msg "func @f() {\nentry:\n  br entry\n}" in
  let dup (f : Func.t) =
    { f with Func.blocks = f.Func.blocks @ f.Func.blocks }
  in
  let m = { m with Irmod.funcs = List.map dup m.Irmod.funcs } in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "duplicate block label")
       (Verify.check m))

let test_verify_non_positive_size () =
  let errs =
    verify_errs
      "func @f() {\nentry:\n  %a = alloca 8\n  %v = load 0, %a\n  ret\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "non-positive access size")
       errs)

let test_verify_undefined_global () =
  let errs =
    verify_errs "func @f() {\nentry:\n  %v = load 8, @nope\n  ret\n}"
  in
  checkb "caught" true
    (List.exists
       (fun (e : Verify.error) ->
         Astring_contains.contains e.what "undefined global")
       errs)

let test_builder_simple () =
  let b = Builder.create () in
  Builder.add_global b "g" 8;
  let fb = Builder.start_func b "main" [] in
  Builder.block fb "entry";
  let a = Builder.alloca fb ~size:8 in
  Builder.store fb ~size:8 ~ptr:a ~value:(Value.int 7);
  let v = Builder.load fb ~size:8 a in
  Builder.ret fb (Some v);
  Builder.end_func fb;
  let m = Builder.finish b in
  check Alcotest.int "verifies" 0 (List.length (Verify.check m));
  let printed = Irmod.to_string m in
  let m2 = Parser.parse_exn_msg printed in
  check Alcotest.int "roundtrips" 0 (List.length (Verify.check m2))

let test_builder_unterminated () =
  let b = Builder.create () in
  let fb = Builder.start_func b "f" [] in
  Builder.block fb "entry";
  match Builder.end_func fb with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_builder_next_id_after () =
  let m = parse () in
  let floor = Builder.next_id_after m in
  Irmod.iter_instrs m (fun _ _ i -> checkb "below floor" true (i.Instr.id < floor))

(* qcheck: printing then parsing a random straight-line function preserves
   the instruction count and verifies. *)
let arb_straightline =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 30)
        (oneofl [ `Add; `Alloca; `StoreLoad; `Icmp; `Gep ]))
  in
  make ~print:(fun ops -> string_of_int (List.length ops)) gen

let prop_roundtrip_straightline =
  QCheck.Test.make ~name:"roundtrip random straight-line function" ~count:50
    arb_straightline (fun ops ->
      let b = Builder.create () in
      let fb = Builder.start_func b "main" [] in
      Builder.block fb "entry";
      let last_ptr = ref None in
      List.iter
        (fun op ->
          match op with
          | `Add -> ignore (Builder.add fb (Value.int 1) (Value.int 2))
          | `Alloca -> last_ptr := Some (Builder.alloca fb ~size:16)
          | `StoreLoad -> (
              match !last_ptr with
              | Some p ->
                  Builder.store fb ~size:8 ~ptr:p ~value:(Value.int 3);
                  ignore (Builder.load fb ~size:8 p)
              | None -> ignore (Builder.add fb (Value.int 0) (Value.int 0)))
          | `Icmp -> ignore (Builder.icmp fb Instr.Slt (Value.int 1) (Value.int 2))
          | `Gep -> (
              match !last_ptr with
              | Some p -> last_ptr := Some (Builder.gep fb p (Value.int 4))
              | None -> ()))
        ops;
      Builder.ret fb (Some (Value.int 0));
      Builder.end_func fb;
      let m = Builder.finish b in
      let m2 = Parser.parse_exn_msg (Irmod.to_string m) in
      Verify.check m = [] && Verify.check m2 = []
      && List.length (Func.instrs (Option.get (Irmod.find_func m2 "main")))
         = List.length (Func.instrs (Option.get (Irmod.find_func m "main"))))

let suite =
  [
    ( "ir",
      [
        Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "lexer line numbers" `Quick test_lexer_lines;
        Alcotest.test_case "lexer error" `Quick test_lexer_error;
        Alcotest.test_case "parse module" `Quick test_parse_module;
        Alcotest.test_case "parse global init" `Quick test_parse_global_init;
        Alcotest.test_case "instruction ids unique" `Quick test_parse_ids_unique;
        Alcotest.test_case "parse error has line" `Quick test_parse_error_line;
        Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip;
        Alcotest.test_case "verify accepts sample" `Quick test_verify_ok;
        Alcotest.test_case "verify undefined register" `Quick
          test_verify_undefined_reg;
        Alcotest.test_case "verify double assignment" `Quick
          test_verify_double_assign;
        Alcotest.test_case "verify bad label" `Quick test_verify_bad_label;
        Alcotest.test_case "verify phi non-pred arm" `Quick
          test_verify_phi_nonpred;
        Alcotest.test_case "verify phi missing arm" `Quick
          test_verify_phi_missing_arm;
        Alcotest.test_case "verify unknown callee" `Quick
          test_verify_unknown_callee;
        Alcotest.test_case "verify intrinsic callee" `Quick
          test_verify_intrinsic_callee_ok;
        Alcotest.test_case "verify duplicate instruction ids" `Quick
          test_verify_duplicate_ids;
        Alcotest.test_case "verify duplicate block labels" `Quick
          test_verify_duplicate_labels;
        Alcotest.test_case "verify non-positive access size" `Quick
          test_verify_non_positive_size;
        Alcotest.test_case "verify undefined global" `Quick
          test_verify_undefined_global;
        Alcotest.test_case "builder simple" `Quick test_builder_simple;
        Alcotest.test_case "builder rejects unterminated" `Quick
          test_builder_unterminated;
        Alcotest.test_case "builder next_id_after" `Quick
          test_builder_next_id_after;
        QCheck_alcotest.to_alcotest prop_roundtrip_straightline;
      ] );
  ]
