(** Tests for the SCAF core: the result lattice, assertions, responses,
    Algorithm 2 (join) and Algorithm 1 (the Orchestrator). *)

open Scaf

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* -- Aresult ------------------------------------------------------- *)

let test_precision_order () =
  let open Aresult in
  checkb "NoAlias = MustAlias" true (pr (RAlias NoAlias) = pr (RAlias MustAlias));
  checkb "MustAlias > SubAlias" true (pr (RAlias MustAlias) > pr (RAlias SubAlias));
  checkb "SubAlias > MayAlias" true (pr (RAlias SubAlias) > pr (RAlias MayAlias));
  checkb "NoModRef > Mod" true (pr (RModref NoModRef) > pr (RModref Mod));
  checkb "Mod = Ref" true (pr (RModref Mod) = pr (RModref Ref));
  checkb "Ref > ModRef" true (pr (RModref Ref) > pr (RModref ModRef));
  checkb "bottom alias" true (is_bottom bottom_alias);
  checkb "definite" true (is_definite (RModref NoModRef));
  checkb "not definite" false (is_definite (RModref Mod))

(* -- Assertions ---------------------------------------------------- *)

let mk_assert ?(points = []) ?(conflicts = []) ?(cost = 1.0) id payload =
  { Assertion.module_id = id; points; cost; conflicts; payload }

let a_ctrl =
  mk_assert ~cost:0.0 "control-spec"
    (Assertion.Ctrl_block_dead { fname = "f"; label = "rare"; beacon = 1 })

let a_val v =
  mk_assert ~cost:10.0 ~points:[ 5 ] "value-pred"
    (Assertion.Value_predict { load = 5; value = v })

let a_sep sites =
  mk_assert ~cost:20.0 ~conflicts:sites "read-only"
    (Assertion.Heap_separate
       {
         loop = "f:loop";
         sites;
         gsites = [];
         heap = Assertion.Read_only_heap;
         inside = [];
         outside = [];
       })

let a_sl sites =
  mk_assert ~cost:15.0 ~conflicts:sites "short-lived"
    (Assertion.Heap_separate
       {
         loop = "f:loop";
         sites;
         gsites = [];
         heap = Assertion.Short_lived_heap;
         inside = [];
         outside = [];
       })

let test_assertion_conflicts () =
  checkb "same sites conflict" true (Assertion.conflicts_with (a_sep [ 3 ]) (a_sl [ 3 ]));
  checkb "disjoint sites fine" false
    (Assertion.conflicts_with (a_sep [ 3 ]) (a_sl [ 4 ]));
  checkb "ctrl conflicts nothing" false
    (Assertion.conflicts_with a_ctrl (a_sep [ 3 ]));
  checkb "self is not a conflict" false
    (Assertion.conflicts_with (a_sep [ 3 ]) (a_sep [ 3 ]))

(* qcheck: an assertion never conflicts with itself (the planner relies
   on this when it packs an option's assertions into one set) *)
let arb_assertion =
  let open QCheck in
  let gen_sites = Gen.(list_size (int_range 0 3) (int_range 0 5)) in
  let gen_payload =
    Gen.oneof
      [
        Gen.return
          (Assertion.Ctrl_block_dead { fname = "f"; label = "b"; beacon = 1 });
        Gen.map
          (fun v -> Assertion.Value_predict { load = 5; value = Int64.of_int v })
          Gen.small_int;
        Gen.map (fun s -> Assertion.Residue { access = s; allowed = 3 }) Gen.small_int;
        Gen.map
          (fun sites ->
            Assertion.Heap_separate
              {
                loop = "f:l";
                sites;
                gsites = [];
                heap = Assertion.Read_only_heap;
                inside = [];
                outside = [];
              })
          gen_sites;
        Gen.map
          (fun sites -> Assertion.Short_lived_balance { loop = "f:l"; sites })
          gen_sites;
        Gen.map (fun i -> Assertion.Points_to_objects { instr = i }) Gen.small_int;
      ]
  in
  let gen =
    Gen.(
      let* id = oneofl [ "m1"; "m2" ] in
      let* conflicts = gen_sites in
      let* payload = gen_payload in
      return { Assertion.module_id = id; points = []; cost = 1.0; conflicts; payload })
  in
  make ~print:(fun a -> Fmt.str "%a" Assertion.pp a) gen

let prop_conflicts_irreflexive =
  QCheck.Test.make ~name:"conflicts_with is irreflexive" ~count:300
    arb_assertion (fun a -> not (Assertion.conflicts_with a a))

(* -- Responses ----------------------------------------------------- *)

let test_response_costs () =
  let r =
    Response.make (Aresult.RModref Aresult.NoModRef)
      ~options:[ [ a_val 1L; a_ctrl ]; [ a_sep [ 1 ] ] ]
  in
  checkf "cheapest" 10.0 (Response.Options.cheapest_cost r.Response.options);
  checkb "no free option" false (Response.Options.has_free r.Response.options);
  checkb "not definite-free" false (Response.is_definite_free r);
  let free = Response.free (Aresult.RModref Aresult.NoModRef) in
  checkf "free cost" 0.0 (Response.Options.cheapest_cost free.Response.options);
  checkb "definite-free" true (Response.is_definite_free free)

(* -- Join (Algorithm 2) -------------------------------------------- *)

let nomodref ?(options = [ [] ]) () =
  Response.make ~options (Aresult.RModref Aresult.NoModRef)

let test_join_precision_wins () =
  let lo = Response.free (Aresult.RModref Aresult.Mod) in
  let hi = nomodref ~options:[ [ a_val 1L ] ] () in
  let j = Join.join Join.Cheapest lo hi in
  checkb "more precise wins despite cost" true
    (j.Response.result = Aresult.RModref Aresult.NoModRef);
  let j' = Join.join Join.Cheapest hi lo in
  checkb "commutes" true (j'.Response.result = j.Response.result)

let test_join_cheapest_picks_cheaper () =
  let expensive = nomodref ~options:[ [ a_sep [ 1 ] ] ] () in
  let cheap = nomodref ~options:[ [ a_ctrl ] ] () in
  let j = Join.join Join.Cheapest expensive cheap in
  checkf "picked the free option" 0.0 (Response.Options.cheapest_cost j.Response.options)

let test_join_all_keeps_options () =
  let r1 = nomodref ~options:[ [ a_sep [ 1 ] ] ] () in
  let r2 = nomodref ~options:[ [ a_ctrl ] ] () in
  let j = Join.join Join.All r1 r2 in
  checki "both options kept" 2 (List.length j.Response.options)

let test_join_mod_ref_combination () =
  (* Mod + Ref => NoModRef with the cross product of assertion sets *)
  let m = Response.make (Aresult.RModref Aresult.Mod) ~options:[ [ a_ctrl ] ] in
  let r =
    Response.make (Aresult.RModref Aresult.Ref) ~options:[ [ a_val 2L ] ]
  in
  let j = Join.join Join.Cheapest m r in
  checkb "NoModRef" true (j.Response.result = Aresult.RModref Aresult.NoModRef);
  (match j.Response.options with
  | [ o ] -> checki "combined assertions" 2 (List.length o)
  | _ -> Alcotest.fail "expected one combined option");
  (* conflicting assertion sets cannot combine: falls back to cheaper *)
  let m' =
    Response.make (Aresult.RModref Aresult.Mod) ~options:[ [ a_sep [ 7 ] ] ]
  in
  let r' =
    Response.make (Aresult.RModref Aresult.Ref) ~options:[ [ a_sl [ 7 ] ] ]
  in
  let j' = Join.join Join.Cheapest m' r' in
  checkb "conflict: no NoModRef" true
    (j'.Response.result <> Aresult.RModref Aresult.NoModRef)

let test_join_conflicting_results () =
  (* NoAlias vs MustAlias at equal precision: the assertion-free side wins *)
  let spec =
    Response.make (Aresult.RAlias Aresult.NoAlias) ~options:[ [ a_val 3L ] ]
  in
  let sure = Response.free (Aresult.RAlias Aresult.MustAlias) in
  let j = Join.join Join.Cheapest spec sure in
  checkb "free side wins" true (j.Response.result = Aresult.RAlias Aresult.MustAlias)

let test_product_filters_conflicts () =
  let s1 = [ [ a_sep [ 1 ] ]; [ a_ctrl ] ] in
  let s2 = [ [ a_sl [ 1 ] ] ] in
  (* sep[1] x sl[1] conflicts; ctrl x sl[1] survives *)
  let p = Join.product s1 s2 in
  checki "one surviving combo" 1 (List.length p)

(* qcheck: join is monotone in precision and never invents precision *)
let arb_response =
  let open QCheck in
  let gen_result =
    Gen.oneofl
      Aresult.
        [ RModref NoModRef; RModref Mod; RModref Ref; RModref ModRef ]
  in
  let gen_option = Gen.oneofl [ []; [ a_ctrl ]; [ a_val 1L ]; [ a_sep [ 2 ] ] ] in
  let gen =
    Gen.(
      let* r = gen_result in
      let* os = list_size (int_range 1 3) gen_option in
      return (Response.make r ~options:os))
  in
  make ~print:(fun r -> Fmt.str "%a" Response.pp r) gen

let prop_join_monotone =
  QCheck.Test.make ~name:"join result at least as precise as either side"
    ~count:300 (QCheck.pair arb_response arb_response) (fun (r1, r2) ->
      let j = Join.join Join.Cheapest r1 r2 in
      Aresult.pr j.Response.result
      >= max (Aresult.pr r1.Response.result) (Aresult.pr r2.Response.result))

let prop_join_commutative_result =
  QCheck.Test.make ~name:"join result is commutative" ~count:300
    (QCheck.pair arb_response arb_response) (fun (r1, r2) ->
      let a = Join.join Join.Cheapest r1 r2 in
      let b = Join.join Join.Cheapest r2 r1 in
      Aresult.equal a.Response.result b.Response.result)

let prop_join_bottom_identity =
  QCheck.Test.make ~name:"bottom is a join identity" ~count:300 arb_response
    (fun r ->
      let j = Join.join Join.Cheapest Response.bottom_modref r in
      Aresult.equal j.Response.result r.Response.result
      || Aresult.is_bottom r.Response.result)

(* -- Orchestrator (Algorithm 1) ------------------------------------ *)

let tiny_prog =
  Scaf_cfg.Progctx.build
    (Scaf_ir.Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")

let const_module ?(kind = Module_api.Memory) name resp =
  Module_api.make ~name ~kind ~factored:false (fun _ q ->
      match q with Query.Modref _ -> resp | Query.Alias _ -> Module_api.no_answer q)

let counting_module name resp counter =
  Module_api.make ~name ~kind:Module_api.Memory ~factored:false (fun _ q ->
      incr counter;
      match q with Query.Modref _ -> resp | Query.Alias _ -> Module_api.no_answer q)

let mq = Query.modref_instrs ~tr:Query.Same 100 101

let test_orchestrator_bailout_free () =
  (* once a definite cost-free answer arrives, later modules are skipped *)
  let later = ref 0 in
  let o =
    Orchestrator.create tiny_prog
      (Orchestrator.default_config
         [
           const_module "m1" (Response.free (Aresult.RModref Aresult.NoModRef));
           counting_module "m2" (nomodref ()) later;
         ])
  in
  let r = Orchestrator.handle o mq in
  checkb "definite" true (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checki "later module skipped" 0 !later

let test_orchestrator_no_bailout_on_costly () =
  (* a costly definite answer does not stop the search under Definite_free *)
  let later = ref 0 in
  let o =
    Orchestrator.create tiny_prog
      (Orchestrator.default_config
         [
           const_module "m1" (nomodref ~options:[ [ a_val 9L ] ] ());
           counting_module "m2" Response.bottom_modref later;
         ])
  in
  let _ = Orchestrator.handle o mq in
  checki "later module consulted" 1 !later

let test_orchestrator_exhaustive () =
  let later = ref 0 in
  let o =
    Orchestrator.create tiny_prog
      {
        (Orchestrator.default_config
           [
             const_module "m1" (Response.free (Aresult.RModref Aresult.NoModRef));
             counting_module "m2" (nomodref ()) later;
           ])
        with
        Orchestrator.bailout = Orchestrator.Exhaustive;
      }
  in
  let _ = Orchestrator.handle o mq in
  checki "later module still consulted" 1 !later

let test_orchestrator_premise_depth () =
  (* a module that always re-issues its query must be cut off by the
     premise budget, not loop forever *)
  let evals = ref 0 in
  let recursive =
    Module_api.make ~name:"rec" ~kind:Module_api.Memory ~factored:true
      (fun ctx q ->
        incr evals;
        Module_api.Ctx.ask ctx q)
  in
  let o =
    Orchestrator.create tiny_prog
      { (Orchestrator.default_config [ recursive ]) with Orchestrator.max_premise_depth = 3 }
  in
  let r = Orchestrator.handle o mq in
  checkb "conservative result" true (Aresult.is_bottom r.Response.result);
  checkb "bounded evaluations" true (!evals <= 5)

let test_orchestrator_provenance () =
  let o =
    Orchestrator.create tiny_prog
      (Orchestrator.default_config
         [ const_module "answerer" (Response.free (Aresult.RModref Aresult.NoModRef)) ])
  in
  let r = Orchestrator.handle o mq in
  checkb "provenance recorded" true
    (Response.Sset.mem "answerer" r.Response.provenance)

let test_orchestrator_desired_stripping () =
  (* with respect_desired=false, premise queries lose their dr parameter *)
  let seen_dr = ref None in
  let observer =
    Module_api.make ~name:"obs" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        (match q with
        | Query.Alias a -> seen_dr := a.Query.adr
        | _ -> ());
        Module_api.no_answer q)
  in
  let asker =
    Module_api.make ~name:"ask" ~kind:Module_api.Memory ~factored:true
      (fun ctx q ->
        (match q with
        | Query.Modref _ ->
            ignore
              (Module_api.Ctx.ask ctx
                 (Query.alias ~fname:"main" ~tr:Query.Same ~dr:Query.DMustAlias
                    (Scaf_ir.Value.Null, 1) (Scaf_ir.Value.Null, 1)))
        | _ -> ());
        Module_api.no_answer q)
  in
  let run ~respect =
    seen_dr := None;
    let o =
      Orchestrator.create tiny_prog
        { (Orchestrator.default_config [ asker; observer ]) with
          Orchestrator.respect_desired = respect }
    in
    ignore (Orchestrator.handle o mq);
    !seen_dr
  in
  checkb "dr kept" true (run ~respect:true = Some Query.DMustAlias);
  checkb "dr stripped" true (run ~respect:false = None)

let test_orchestrator_latency_stats () =
  let t = ref 0.0 in
  let clock () = t := !t +. 1.0; !t in
  let o =
    Orchestrator.create tiny_prog
      { (Orchestrator.default_config
           [ const_module "m" (Response.free (Aresult.RModref Aresult.NoModRef)) ])
        with Orchestrator.clock = Some clock }
  in
  ignore (Orchestrator.handle o mq);
  ignore (Orchestrator.handle o mq);
  checki "two latencies" 2 (List.length (Orchestrator.latencies o))

let test_orchestrator_timeout_deadline () =
  (* once the per-query budget is spent, remaining modules are skipped *)
  let t = ref 0.0 in
  let clock () = t := !t +. 1.0; !t in
  let later = ref 0 in
  let o =
    Orchestrator.create tiny_prog
      { (Orchestrator.default_config
           [
             const_module "m1" Response.bottom_modref;
             counting_module "m2" (nomodref ()) later;
           ])
        with
        Orchestrator.bailout = Orchestrator.Timeout 0.5;
        clock = Some clock;
      }
  in
  let r = Orchestrator.handle o mq in
  checkb "bails with what it has" true (Aresult.is_bottom r.Response.result);
  checki "module past the deadline skipped" 0 !later;
  checki "latency still recorded" 1 (List.length (Orchestrator.latencies o));
  checkb "deadline cleared after the query" true
    (not (Orchestrator.deadline_pending o))

let test_orchestrator_timeout_generous () =
  (* a generous budget behaves like Definite_free *)
  let t = ref 0.0 in
  let clock () = t := !t +. 1.0; !t in
  let o =
    Orchestrator.create tiny_prog
      { (Orchestrator.default_config
           [
             const_module "m1" Response.bottom_modref;
             const_module "m2" (Response.free (Aresult.RModref Aresult.NoModRef));
           ])
        with
        Orchestrator.bailout = Orchestrator.Timeout 100.0;
        clock = Some clock;
      }
  in
  let r = Orchestrator.handle o mq in
  checkb "full-precision answer" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef)

let test_orchestrator_timeout_no_cache_poisoning () =
  (* regression: an answer truncated by an expired deadline must not be
     memoized, or a later identical query with a fresh budget would replay
     the partial (bottom) join *)
  let t = ref 0.0 in
  let clock () = t := !t +. 1.0; !t in
  let first = ref true in
  let slow_once =
    Module_api.make ~name:"slow-once" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        if !first then begin
          first := false;
          t := !t +. 100.0
        end;
        Module_api.no_answer q)
  in
  let o =
    Orchestrator.create tiny_prog
      { (Orchestrator.default_config
           [
             slow_once;
             const_module "m2" (Response.free (Aresult.RModref Aresult.NoModRef));
           ])
        with
        Orchestrator.bailout = Orchestrator.Timeout 10.0;
        clock = Some clock;
      }
  in
  let r1 = Orchestrator.handle o mq in
  checkb "first query timed out conservatively" true
    (Aresult.is_bottom r1.Response.result);
  let r2 = Orchestrator.handle o mq in
  checkb "fresh budget reaches the full answer" true
    (r2.Response.result = Aresult.RModref Aresult.NoModRef)

let suite =
  [
    ( "core",
      [
        Alcotest.test_case "precision order" `Quick test_precision_order;
        Alcotest.test_case "assertion conflicts" `Quick test_assertion_conflicts;
        Alcotest.test_case "response costs" `Quick test_response_costs;
        Alcotest.test_case "join: precision wins" `Quick test_join_precision_wins;
        Alcotest.test_case "join: CHEAPEST picks cheaper" `Quick
          test_join_cheapest_picks_cheaper;
        Alcotest.test_case "join: ALL keeps options" `Quick
          test_join_all_keeps_options;
        Alcotest.test_case "join: Mod x Ref => NoModRef" `Quick
          test_join_mod_ref_combination;
        Alcotest.test_case "join: conflicting results" `Quick
          test_join_conflicting_results;
        Alcotest.test_case "product filters conflicts" `Quick
          test_product_filters_conflicts;
        QCheck_alcotest.to_alcotest prop_join_monotone;
        QCheck_alcotest.to_alcotest prop_join_commutative_result;
        QCheck_alcotest.to_alcotest prop_join_bottom_identity;
        Alcotest.test_case "orchestrator: bail-out on free definite" `Quick
          test_orchestrator_bailout_free;
        Alcotest.test_case "orchestrator: costly answer continues" `Quick
          test_orchestrator_no_bailout_on_costly;
        Alcotest.test_case "orchestrator: exhaustive policy" `Quick
          test_orchestrator_exhaustive;
        Alcotest.test_case "orchestrator: premise budget" `Quick
          test_orchestrator_premise_depth;
        Alcotest.test_case "orchestrator: provenance" `Quick
          test_orchestrator_provenance;
        Alcotest.test_case "orchestrator: desired-result stripping" `Quick
          test_orchestrator_desired_stripping;
        Alcotest.test_case "orchestrator: latency stats" `Quick
          test_orchestrator_latency_stats;
        QCheck_alcotest.to_alcotest prop_conflicts_irreflexive;
        Alcotest.test_case "orchestrator: timeout deadline respected" `Quick
          test_orchestrator_timeout_deadline;
        Alcotest.test_case "orchestrator: generous timeout" `Quick
          test_orchestrator_timeout_generous;
        Alcotest.test_case "orchestrator: timeout never poisons the cache"
          `Quick test_orchestrator_timeout_no_cache_poisoning;
      ] );
  ]
