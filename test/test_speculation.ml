(** Tests for the six speculation modules, each on a crafted program +
    profile, both standalone (confluence-style) and in the full SCAF
    ensemble. *)

open Scaf
open Scaf_ir
open Scaf_profile
open Scaf_speculation

let checkb = Alcotest.check Alcotest.bool

let setup ?(inputs = [ [||] ]) src =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  let profiles = Profiler.profile_module ~inputs m in
  (m, profiles)

let find m p =
  let r = ref (-1) in
  Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
  !r

let solo (mk : Profiles.t -> Module_api.t) profiles =
  let prog = profiles.Profiles.ctx in
  Orchestrator.create prog (Orchestrator.default_config [ mk profiles ])

let full profiles =
  let prog = profiles.Profiles.ctx in
  Orchestrator.create prog
    (Orchestrator.default_config
       (Scaf_analysis.Registry.create prog @ Registry.create profiles))

(* -- control speculation -------------------------------------------- *)

let test_control_spec_dead_endpoint () =
  let m, profiles =
    setup ~inputs:[ [| 0L |] ]
      {|
global @g 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %r = call @input(0)
  %c = icmp ne %r, 0
  condbr %c, dead, live
dead:
  store 8, @g, 1
  br latch
live:
  store 8, @g, %i
  br latch
latch:
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}
  in
  let dead_store =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Int 1L; _ } -> true
        | _ -> false)
  in
  let live_store =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "i"; _ } -> true
        | _ -> false)
  in
  let o = solo Control_spec.create profiles in
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same dead_store
         live_store)
  in
  checkb "dead endpoint removed" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  (* the assertion names the dead block at zero cost *)
  (match Response.Options.cheapest r.Response.options with
  | Some [ a ] ->
      checkb "cost 0" true (a.Assertion.cost = 0.0);
      (match a.Assertion.payload with
      | Assertion.Ctrl_block_dead { label = "dead"; _ } -> ()
      | _ -> Alcotest.fail "wrong payload")
  | _ -> Alcotest.fail "expected a single assertion");
  (* both endpoints live: no answer from control spec alone *)
  let r2 =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same live_store
         live_store)
  in
  checkb "live endpoints untouched" true
    (r2.Response.result <> Aresult.RModref Aresult.NoModRef)

(* -- value prediction ------------------------------------------------ *)

let vp_src =
  {|
global @flag 8
global @acc 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %z = icmp sgt %i, 1000000
  store 8, @flag, %z
  %fv = load 8, @flag
  %a = load 8, @acc
  %a2 = add %a, %fv
  store 8, @acc, %a2
  %z2 = icmp sgt %i, 2000000
  store 8, @flag, %z2
  %i2 = add %i, 1
  %c = icmp slt %i2, 60
  condbr %c, loop, exit
exit:
  ret
}
|}

let test_value_pred_direct () =
  let m, profiles = setup vp_src in
  let flag_load = find m (fun i -> i.Instr.dst = Some "fv") in
  let store1 =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "z"; _ } -> true
        | _ -> false)
  in
  let o = solo Value_pred_spec.create profiles in
  (* store -> predictable load: removable in isolation *)
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same store1 flag_load)
  in
  checkb "direct rule fires" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "costs the load's checks" true (Response.Options.cheapest_cost r.Response.options > 0.0)

let test_value_pred_kill_needs_collaboration () =
  let m, profiles = setup vp_src in
  let store1 =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "z"; _ } -> true
        | _ -> false)
  in
  let store2 =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { value = Value.Reg "z2"; _ } -> true
        | _ -> false)
  in
  let q = Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same store1 store2 in
  (* isolated: the kill needs a must-alias premise nobody can answer *)
  let o1 = solo Value_pred_spec.create profiles in
  checkb "isolated fails" true
    ((Orchestrator.handle o1 q).Response.result
    <> Aresult.RModref Aresult.NoModRef);
  (* ensemble: basic-aa resolves the premise *)
  let o2 = full profiles in
  let r = Orchestrator.handle o2 q in
  checkb "ensemble succeeds" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "value-pred involved" true
    (Response.Sset.mem "value-pred" r.Response.provenance)

(* -- pointer residue ------------------------------------------------- *)

let test_residue_spec () =
  let m, profiles =
    setup
      {|
global @arr 256
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 16
  %om = srem %o, 240
  %p = gep @arr, %om
  store 8, %p, %i
  %o8 = add %om, 8
  %q = gep @arr, %o8
  %v = load 8, %q
  %i2 = add %i, 1
  %c = icmp slt %i2, 60
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let st = find m (fun i -> match i.Instr.kind with Instr.Store { ptr = Value.Reg "p"; _ } -> true | _ -> false) in
  let ld = find m (fun i -> i.Instr.dst = Some "v") in
  let o = solo Residue_spec.create profiles in
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same st ld)
  in
  checkb "disjoint residues, isolated modref" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "two residue assertions" true
    (match Response.Options.cheapest r.Response.options with Some o -> List.length o = 2 | None -> false)

(* -- read-only + points-to ------------------------------------------- *)

let ro_src =
  {|
global @tbl 8
global @out 8
declare @sink readonly
func @main() {
entry:
  %t = call @malloc(64)
  store 8, @tbl, %t
  store 8, %t, 9
  %tp = load 8, @tbl
  call @sink(%tp)
  %o = call @malloc(64)
  store 8, @out, %o
  %oq = load 8, @out
  store 8, @out, %oq
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %p = load 8, @tbl
  %v = load 8, %p
  %w = load 8, @out
  %j = srem %i, 8
  %j8 = mul %j, 8
  %q = gep %w, %j8
  store 8, %q, %v
  %i2 = add %i, 1
  %c = icmp slt %i2, 60
  condbr %c, loop, exit
exit:
  ret
}
|}

let test_read_only_needs_points_to () =
  let m, profiles = setup ro_src in
  let tbl_load = find m (fun i -> i.Instr.dst = Some "v") in
  let out_store =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Reg "q"; _ } -> true
        | _ -> false)
  in
  let q =
    Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same out_store tbl_load
  in
  (* read-only alone cannot establish containment *)
  let o1 = solo Read_only_spec.create profiles in
  checkb "isolated read-only fails" true
    ((Orchestrator.handle o1 q).Response.result
    <> Aresult.RModref Aresult.NoModRef);
  (* with points-to it collaborates, and the prohibitive points-to
     assertion is replaced by a cheap heap check *)
  let prog = profiles.Profiles.ctx in
  let o2 =
    Orchestrator.create prog
      (Orchestrator.default_config
         [ Read_only_spec.create profiles; Points_to_spec.create profiles ])
  in
  let r = Orchestrator.handle o2 q in
  checkb "pair succeeds" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "cheap to validate" true
    (Cost_model.affordable (Response.Options.cheapest_cost r.Response.options));
  checkb "points-to in provenance" true
    (Response.Sset.mem "points-to" r.Response.provenance)

(* -- short-lived ------------------------------------------------------ *)

let sl_src =
  {|
global @slot 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %b = call @malloc(32)
  store 8, @slot, %b
  %p = load 8, @slot
  store 8, %p, %i
  %r = gep %p, 8
  %v = load 8, %r
  %b2 = load 8, @slot
  call @free(%b2)
  %i2 = add %i, 1
  %c = icmp slt %i2, 60
  condbr %c, loop, exit
exit:
  ret
}
|}

let test_short_lived_cross_iteration_only () =
  let m, profiles = setup sl_src in
  let st = find m (fun i -> match i.Instr.kind with Instr.Store { ptr = Value.Reg "p"; _ } -> true | _ -> false) in
  let ld = find m (fun i -> i.Instr.dst = Some "v") in
  let prog = profiles.Profiles.ctx in
  let o =
    Orchestrator.create prog
      (Orchestrator.default_config
         [ Short_lived_spec.create profiles; Points_to_spec.create profiles ])
  in
  let cross = Query.modref_instrs ~loop:"main:loop" ~tr:Query.Before st ld in
  let intra = Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same st ld in
  let rc = Orchestrator.handle o cross in
  checkb "cross-iteration removed" true
    (rc.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "affordable" true (Cost_model.affordable (Response.Options.cheapest_cost rc.Response.options));
  (* the balance check is part of the option *)
  checkb "has balance assertion" true
    (match Response.Options.cheapest rc.Response.options with
    | Some os ->
        List.exists
          (fun (a : Assertion.t) ->
            match a.Assertion.payload with
            | Assertion.Short_lived_balance _ -> true
            | _ -> false)
          os
    | None -> false);
  let ri = Orchestrator.handle o intra in
  checkb "intra-iteration untouched" true
    (ri.Response.result <> Aresult.RModref Aresult.NoModRef)

(* -- points-to -------------------------------------------------------- *)

let test_points_to_prohibitive () =
  let m, profiles = setup ro_src in
  let tbl_load = find m (fun i -> i.Instr.dst = Some "v") in
  let out_store =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Reg "q"; _ } -> true
        | _ -> false)
  in
  let prog = profiles.Profiles.ctx in
  (* points-to + basic (for the footprint lift): NoModRef but unaffordable *)
  let o =
    Orchestrator.create prog
      (Orchestrator.default_config
         [ Scaf_analysis.Basic_aa.create prog; Points_to_spec.create profiles ])
  in
  let r =
    Orchestrator.handle o
      (Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same out_store tbl_load)
  in
  checkb "points-to disproves" true
    (r.Response.result = Aresult.RModref Aresult.NoModRef);
  checkb "but prohibitively" false
    (Cost_model.affordable (Response.Options.cheapest_cost r.Response.options))

let suite =
  [
    ( "speculation",
      [
        Alcotest.test_case "control-spec dead endpoint" `Quick
          test_control_spec_dead_endpoint;
        Alcotest.test_case "value-pred direct" `Quick test_value_pred_direct;
        Alcotest.test_case "value-pred kill needs collaboration" `Quick
          test_value_pred_kill_needs_collaboration;
        Alcotest.test_case "pointer-residue standalone" `Quick
          test_residue_spec;
        Alcotest.test_case "read-only needs points-to" `Quick
          test_read_only_needs_points_to;
        Alcotest.test_case "short-lived: cross-iteration only" `Quick
          test_short_lived_cross_iteration_only;
        Alcotest.test_case "points-to is prohibitive" `Quick
          test_points_to_prohibitive;
      ] );
  ]
