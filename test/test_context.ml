(** Calling-context sensitivity (§3.2.2) and the timeout bail-out policy. *)

open Scaf
open Scaf_ir
open Scaf_profile

let checkb = Alcotest.check Alcotest.bool

(* One static malloc site called from two different call sites: the two
   resulting objects are distinct dynamic instances of the same site.
   Context-insensitively, points-to cannot separate them; with the query's
   calling-context parameter it can. *)
let cc_src =
  {|
global @sx 8
global @sy 8

func @alloc_one() {
entry:
  %p = call @malloc(32)
  ret %p
}

func @main() {
entry:
  %x = call @alloc_one()
  store 8, @sx, %x
  %y = call @alloc_one()
  store 8, @sy, %y
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %px = load 8, @sx
  %qx = gep %px, 0
  store 8, %qx, %i
  %py = load 8, @sy
  %qy = gep %py, 0
  %v = load 8, %qy
  %i2 = add %i, 1
  %c = icmp slt %i2, 60
  condbr %c, loop, exit
exit:
  ret
}
|}

let find m p =
  let r = ref (-1) in
  Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
  !r

let test_context_sensitivity () =
  let m = Parser.parse_exn_msg cc_src in
  Verify.check_exn m;
  let profiles = Profiler.profile_module m in
  let prog = profiles.Profiles.ctx in
  let o =
    Orchestrator.create prog
      (Orchestrator.default_config
         [ Scaf_speculation.Points_to_spec.create profiles ])
  in
  (* the calling context distinguishing the two x/y instances is the
     caller-side call-site id recorded at allocation *)
  let x_call =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Call { callee = "alloc_one"; _ } -> i.Instr.dst = Some "x"
        | _ -> false)
  in
  let malloc =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Call { callee = "malloc"; _ } -> true
        | _ -> false)
  in
  let q ~cc =
    Query.Alias
      {
        Query.a1 = { Query.ptr = Value.reg "qx"; size = 8; fname = "main" };
        atr = Query.Same;
        a2 = { Query.ptr = Value.reg "qy"; size = 8; fname = "main" };
        aloop = Some "main:loop";
        acc = cc;
        adr = None;
        aepoch = 0;
      }
  in
  (* without context: same static site, conservatively may-alias *)
  let r1 = Orchestrator.handle o (q ~cc:None) in
  checkb "context-insensitive: no separation" true
    (Aresult.pr r1.Response.result = 1);
  (* with a calling context: the site instances are distinguished *)
  let r2 = Orchestrator.handle o (q ~cc:(Some [ malloc; x_call ])) in
  checkb "context-sensitive: NoAlias" true
    (r2.Response.result = Aresult.RAlias Aresult.NoAlias)

let test_timeout_bailout () =
  let prog =
    Scaf_cfg.Progctx.build
      (Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")
  in
  let t = ref 0.0 in
  let clock () =
    t := !t +. 1.0;
    !t
  in
  let consulted = ref 0 in
  let slow name =
    Module_api.make ~name ~kind:Module_api.Memory ~factored:false (fun _ q ->
        incr consulted;
        t := !t +. 10.0;
        Module_api.no_answer q)
  in
  let o =
    Orchestrator.create prog
      {
        (Orchestrator.default_config [ slow "s1"; slow "s2"; slow "s3"; slow "s4" ])
        with
        Orchestrator.bailout = Orchestrator.Timeout 15.0;
        clock = Some clock;
      }
  in
  let _ = Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same 1 2) in
  (* each module burns 10 "seconds": the 15-unit budget admits two *)
  checkb
    (Printf.sprintf "stopped early (consulted %d)" !consulted)
    true (!consulted = 2)

let suite =
  [
    ( "context-and-policies",
      [
        Alcotest.test_case "calling-context sensitivity" `Quick
          test_context_sensitivity;
        Alcotest.test_case "timeout bail-out" `Quick test_timeout_bailout;
      ] );
  ]
