(** Tests for the observability layer: provenance-tree shape under premise
    recursion, the depth budget and cycle annotation, metrics-counter
    exactness under the domain-parallel batch engine, the
    tracing-never-changes-a-response qcheck property, the Chrome
    trace_event export, and the [Module_api.Ctx] / [Response.Options] API
    surfaces introduced alongside the trace layer. *)

open Scaf
open Scaf_ir
open Scaf_pdg
module Sink = Scaf_trace.Sink
module Metrics = Scaf_trace.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let contains = Astring_contains.contains

let nomodref_free = Response.free (Aresult.RModref Aresult.NoModRef)
let noalias_free = Response.free (Aresult.RAlias Aresult.NoAlias)

let tiny_prog =
  Scaf_cfg.Progctx.build
    (Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")

let alias_q =
  Query.alias ~fname:"main" ~tr:Query.Same
    (Value.Global "a", 8)
    (Value.Global "b", 8)

(* A factored module that establishes one alias premise before answering a
   modref query, plus the leaf that resolves the premise: the smallest
   ensemble exercising premise recursion. *)
let premise_raiser =
  Module_api.make ~name:"raiser" ~kind:Module_api.Memory ~factored:true
    (fun ctx q ->
      match q with
      | Query.Modref _ ->
          let (_ : Response.t) = Module_api.Ctx.ask ctx alias_q in
          nomodref_free
      | _ -> Module_api.no_answer q)

let alias_leaf =
  Module_api.make ~name:"leaf" ~kind:Module_api.Memory ~factored:false
    (fun _ q ->
      match q with
      | Query.Alias _ -> noalias_free
      | _ -> Module_api.no_answer q)

let traced_orch ?(modules = [ premise_raiser; alias_leaf ]) () =
  let sink = Sink.create () in
  let o =
    Orchestrator.create tiny_prog
      {
        (Orchestrator.default_config modules) with
        Orchestrator.trace = sink;
      }
  in
  (o, sink)

let rec exists_node pred (n : Sink.node) =
  pred n
  || List.exists
       (fun c -> List.exists (exists_node pred) (Sink.premises c))
       (Sink.consults n)

(* -- provenance-tree shape ------------------------------------------- *)

let test_tree_shape () =
  let o, sink = traced_orch () in
  ignore (Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same 1 2));
  checki "one root per client query" 1 (Sink.root_count sink);
  let n = List.hd (Sink.roots sink) in
  checki "client query sits at depth 0" 0 n.Sink.depth;
  checkb "fresh cache missed" true (n.Sink.cache = Sink.Cache_miss);
  checkb "joined result recorded" true (contains n.Sink.result "NoModRef");
  let cs = Sink.consults n in
  checkb "first consult is the raiser" true
    ((List.hd cs).Sink.c_module = "raiser");
  checkb "the join kept the raiser's answer" true (List.hd cs).Sink.c_improved;
  let ps = Sink.premises (List.hd cs) in
  checki "exactly one premise raised" 1 (List.length ps);
  let p = List.hd ps in
  checki "premise sits at depth 1" 1 p.Sink.depth;
  checkb "premise rendered as an alias query" true
    (contains p.Sink.query "alias");
  checkb "premise answer recorded" true (contains p.Sink.result "NoAlias");
  checki "tree depth" 1 (Sink.max_depth n);
  checkb "no cycle in a straight derivation" false (Sink.has_cycle n);
  (* definite-free answer from module 1 of 2: the bail-out is visible *)
  checkb "bail-out recorded" true (n.Sink.bailed_after = Some 1);
  checki "ensemble size recorded" 2 n.Sink.modules_total

let test_cache_hit_recorded () =
  let o, sink = traced_orch () in
  let q = Query.modref_instrs ~tr:Query.Same 1 2 in
  ignore (Orchestrator.handle o q);
  ignore (Orchestrator.handle o q);
  match Sink.roots sink with
  | [ _; second ] ->
      checkb "second resolution served from the memo table" true
        (second.Sink.cache = Sink.Cache_hit);
      checki "a cache hit consults nobody" 0
        (List.length (Sink.consults second))
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots)

(* -- depth budget and cycle annotation ------------------------------- *)

(* Asks its own query back as a premise: the ping-pong shape the depth
   budget must cut, and the cycle detector must flag. *)
let self_recursive =
  Module_api.make ~name:"rec" ~kind:Module_api.Memory ~factored:true
    (fun ctx q ->
      match q with
      | Query.Alias _ ->
          let (_ : Response.t) = Module_api.Ctx.ask ctx q in
          Module_api.no_answer q
      | _ -> Module_api.no_answer q)

let test_depth_budget_and_cycle () =
  let o, sink = traced_orch ~modules:[ self_recursive ] () in
  ignore (Orchestrator.handle o alias_q);
  let n = List.hd (Sink.roots sink) in
  let budget = (Orchestrator.config o).Orchestrator.max_premise_depth in
  checkb "tree depth bounded by the premise budget" true
    (Sink.max_depth n <= budget + 1);
  checkb "the budget denial is a visible leaf" true
    (exists_node (fun m -> m.Sink.cache = Sink.Budget_denied) n);
  checkb "the repetition is annotated as a cycle" true (Sink.has_cycle n);
  checkb "the rendering carries both annotations" true
    (let s = Sink.tree_to_string n in
     contains s "budget-denied" && contains s "cycle")

(* -- sampling, bounding, the no-op sink ------------------------------ *)

let test_sampling_and_noop () =
  checkb "the no-op sink is disabled" false (Sink.enabled Sink.noop);
  let s = Sink.create ~sample_every:3 () in
  checkb "a collector is enabled" true (Sink.enabled s);
  let taken = List.init 9 (fun _ -> Sink.sample s) in
  checki "every third client query sampled" 3
    (List.length (List.filter Fun.id taken))

let test_max_roots_bound () =
  let s = Sink.create ~max_roots:2 () in
  for i = 0 to 4 do
    Sink.add_root s (Sink.node s ~query:(string_of_int i) ~qclass:"t" ~depth:0)
  done;
  checki "retained trees bounded" 2 (Sink.root_count s);
  checki "excess trees counted, not lost silently" 3 (Sink.dropped s)

(* -- metrics registry ------------------------------------------------ *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter arithmetic" 5 (Metrics.counter_value c);
  checkb "get-or-create returns the same handle" true
    (Metrics.counter m "a" == c);
  let h = Metrics.histogram m "h" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let s = Metrics.histogram_snapshot h in
  checki "observation count exact" 100 s.Metrics.count;
  checkb "median within the observed range" true
    (s.Metrics.p50 >= 1.0 && s.Metrics.p50 <= 100.0);
  let j = Metrics.to_json m in
  checkb "json carries the counter" true (contains j "\"a\":5");
  checkb "json carries the histogram" true (contains j "\"h\":{");
  Metrics.reset m;
  checki "reset zeroes counters" 0 (Metrics.counter_value c);
  checki "reset clears histograms" 0 (Metrics.observed_count h)

(* Exactness under the domain-parallel batch engine: 4 workers, one shared
   registry — every client query increments "queries.client" exactly once,
   and the per-class counters partition client + premise traffic. *)
let test_metrics_parallel_counters () =
  let bench = Option.get (Scaf_suite.Registry.find "181.mcf") in
  let profiles =
    Scaf_profile.Profiler.profile_module
      ~inputs:(Scaf_suite.Program.train_inputs bench)
      (Scaf_suite.Program.program bench)
  in
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let lid = fst (List.hd (Nodep.hot_loop_weights profiles)) in
  let qs = List.map (Pdg.to_query lid) (Pdg.queries_of_loop prog lid) in
  let m = Metrics.create () in
  let scheme = Schemes.scaf_scheme ~metrics:m profiles in
  let (_ : Response.t list) =
    Scheduler.with_pool ~jobs:4 (fun pool ->
        Scheduler.map pool ~state:scheme.Schemes.spawn
          ~f:(fun (r : Schemes.resolver) q -> r.Schemes.resolve q)
          qs)
  in
  let v name = Metrics.counter_value (Metrics.counter m name) in
  checki "every client query counted exactly once" (List.length qs)
    (v "queries.client");
  checki "class counters partition client + premise traffic"
    (List.length qs + v "queries.premise")
    (v "queries.class.alias" + v "queries.class.modref_instr"
   + v "queries.class.modref_loc");
  checkb "cache counters active" true
    (v "cache.hit" + v "cache.canonical_hit" + v "cache.miss"
     + v "cache.uncacheable"
    > 0)

(* -- tracing is pure -------------------------------------------------- *)

let resp_equal (a : Response.t) (b : Response.t) : bool =
  Aresult.equal a.Response.result b.Response.result
  && Response.Sset.equal a.Response.provenance b.Response.provenance
  && a.Response.options = b.Response.options

(* Random workload queries on a real benchmark: attaching a collecting
   sink and a metrics registry must never change any Response. *)
let prop_tracing_pure =
  let arb_val =
    QCheck.oneofl
      [
        Value.Global "a";
        Value.Global "b";
        Value.Reg "i";
        Value.Reg "v";
        Value.Int 0L;
        Value.Int 8L;
        Value.Null;
      ]
  in
  let arb_tr = QCheck.oneofl [ Query.Before; Query.Same; Query.After ] in
  let arb_sz = QCheck.oneofl [ 1; 4; 8 ] in
  let bench = Option.get (Scaf_suite.Registry.find "181.mcf") in
  let profiles =
    lazy
      (Scaf_profile.Profiler.profile_module
         ~inputs:(Scaf_suite.Program.train_inputs bench)
         (Scaf_suite.Program.program bench))
  in
  QCheck.Test.make ~name:"tracing never changes a response" ~count:40
    QCheck.(
      pair
        (quad arb_val arb_sz arb_val arb_tr)
        (option (pair (int_bound 30) (int_bound 30))))
    (fun ((p1, s1, p2, tr), modref) ->
      let profiles = Lazy.force profiles in
      let q =
        match modref with
        | Some (i1, i2) -> Query.modref_instrs ~tr i1 i2
        | None -> Query.alias ~fname:"main" ~tr (p1, s1) (p2, 8)
      in
      let plain = (Schemes.scaf_scheme profiles).Schemes.spawn () in
      let sink = Sink.create () in
      let traced =
        (Schemes.scaf_scheme ~trace:sink ~metrics:(Metrics.create ()) profiles)
          .Schemes.spawn ()
      in
      resp_equal (plain.Schemes.resolve q) (traced.Schemes.resolve q)
      && Sink.root_count sink = 1)

(* -- exporters -------------------------------------------------------- *)

let test_chrome_export () =
  let o, sink = traced_orch () in
  ignore (Orchestrator.handle o (Query.modref_instrs ~tr:Query.Same 1 2));
  let j = Sink.to_chrome_json sink in
  checkb "trace_event envelope" true (contains j "\"traceEvents\"");
  checkb "complete (X) events" true (contains j "\"ph\":\"X\"");
  checkb "module spans exported" true (contains j "consult raiser");
  let nj = Sink.node_to_json (List.hd (Sink.roots sink)) in
  checkb "node json carries the query" true (contains nj "modref");
  checkb "node json nests premises" true (contains nj "\"premises\"")

let test_json_escape () =
  checkb "quotes and control characters escaped" true
    (Sink.json_escape "a\"b\\c\nd" = "a\\\"b\\\\c\\nd")

(* -- the Response.Options API ----------------------------------------- *)

let assertion_of cost =
  {
    Assertion.module_id = "t";
    points = [];
    cost;
    conflicts = [];
    payload = Assertion.Value_predict { load = 0; value = 0L };
  }

let test_response_options () =
  let a5 = assertion_of 5.0 and a2 = assertion_of 2.0 in
  let opts = [ [ a5 ]; [ a2; a2 ] ] in
  checkf "option cost sums its assertions" 4.0
    (Response.Options.cost [ a2; a2 ]);
  checki "count" 2 (Response.Options.count opts);
  checkf "cheapest cost" 4.0 (Response.Options.cheapest_cost opts);
  checkb "cheapest picks the two-assertion option" true
    (Response.Options.cheapest opts = Some [ a2; a2 ]);
  checkb "empty disjunction costs infinity" true
    (Response.Options.cheapest_cost [] = infinity);
  checki "filter keeps the affordable option" 1
    (Response.Options.count
       (Response.Options.filter (fun o -> Response.Options.cost o < 4.5) opts));
  checkb "exists" true
    (Response.Options.exists Response.Options.is_unconditional ([] :: opts));
  (* free (zero-cost) is weaker than unconditional (assertion-free) *)
  let zero = [ [ assertion_of 0.0 ] ] in
  checkb "zero-cost option is free" true (Response.Options.has_free zero);
  checkb "but not unconditional" false
    (Response.Options.has_unconditional zero);
  checkb "the empty option is unconditional" true
    (Response.Options.has_unconditional [ [] ])

(* -- the Module_api.Ctx record ----------------------------------------- *)

let test_ctx_accessors () =
  let asked = ref 0 in
  let ask q =
    incr asked;
    Response.bottom_for q
  in
  let ctx = Module_api.Ctx.make ~ask tiny_prog in
  checki "default depth" 0 (Module_api.Ctx.depth ctx);
  checkb "no desired result by default" true
    (Module_api.Ctx.desired ctx = None);
  checkb "no loop scope by default" true (Module_api.Ctx.loop ctx = None);
  checkb "sink defaults to the no-op" false
    (Sink.enabled (Module_api.Ctx.sink ctx));
  checkb "prog is the program handed in" true
    (Module_api.Ctx.prog ctx == tiny_prog);
  ignore (Module_api.Ctx.ask ctx alias_q);
  checki "ask reaches the oracle" 1 !asked;
  let ctx2 = Module_api.Ctx.with_ask (fun _ -> noalias_free) ctx in
  let r = Module_api.Ctx.ask ctx2 alias_q in
  checkb "with_ask replaced the oracle" true
    (r.Response.result = Aresult.RAlias Aresult.NoAlias);
  checki "the original oracle is untouched" 1 !asked;
  (* without a speculative view, ctrl falls back to the static one *)
  checkb "static ctrl view available" true
    (Module_api.Ctx.ctrl ctx ~fname:"main" <> None)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "provenance tree shape" `Quick test_tree_shape;
        Alcotest.test_case "cache hit recorded" `Quick test_cache_hit_recorded;
        Alcotest.test_case "depth budget + cycle annotation" `Quick
          test_depth_budget_and_cycle;
        Alcotest.test_case "sampling and the no-op sink" `Quick
          test_sampling_and_noop;
        Alcotest.test_case "max_roots bound" `Quick test_max_roots_bound;
        Alcotest.test_case "chrome export" `Quick test_chrome_export;
        Alcotest.test_case "json escaping" `Quick test_json_escape;
        QCheck_alcotest.to_alcotest prop_tracing_pure;
      ] );
    ( "metrics",
      [
        Alcotest.test_case "registry semantics" `Quick test_metrics_registry;
        Alcotest.test_case "exact counters under the work-stealing pool" `Quick
          test_metrics_parallel_counters;
      ] );
    ( "ctx+options",
      [
        Alcotest.test_case "Response.Options API" `Quick test_response_options;
        Alcotest.test_case "Module_api.Ctx accessors" `Quick test_ctx_accessors;
      ] );
  ]
