(** Tests for the static-analysis framework ([lib/lint]) and its wire
    integration: the bad-program corpus (every fixture must produce its
    expected diagnostic codes), the 16 suite benchmarks linting
    error-free, the cost estimator's exactness against the PDG client's
    actual query count, the static no-dependence quick-answer pass, the
    Edit API's structured-diagnostic failure path, and codec round-trips
    for diagnostics, submitted programs, and fuzzed JSON values. *)

open Scaf_lint
open Scaf_server

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -- The bad-program corpus ----------------------------------------- *)

let fixtures_dir = "fixtures/bad_programs"

(* The first line of each fixture is "; expect: <code> <code> ...". *)
let expected_codes (src : string) : string list =
  match String.split_on_char '\n' src with
  | first :: _
    when String.length first >= 9 && String.equal (String.sub first 0 9) "; expect:"
    ->
      List.filter
        (fun s -> s <> "")
        (String.split_on_char ' '
           (String.sub first 9 (String.length first - 9)))
  | _ -> []

let lint_source (src : string) : Diagnostic.t list =
  match Scaf_ir.Parser.parse_exn_msg src with
  | exception Failure msg ->
      [ Diagnostic.error ~code:"parse.error" ~pass:"parse" "%s" msg ]
  | m -> (Pass.run m).Pass.diagnostics

let corpus () : (string * Diagnostic.t list * string list) list =
  Sys.readdir fixtures_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mir")
  |> List.sort String.compare
  |> List.map (fun f ->
         let src = read_file (Filename.concat fixtures_dir f) in
         (f, lint_source src, expected_codes src))

let test_bad_corpus () =
  let entries = corpus () in
  checkb "corpus is non-empty" true (entries <> []);
  List.iter
    (fun (f, ds, expect) ->
      checkb (f ^ " declares expected codes") true (expect <> []);
      let codes = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds in
      List.iter
        (fun c ->
          checkb
            (Printf.sprintf "%s flags %s (got: %s)" f c
               (String.concat "," codes))
            true (List.mem c codes))
        expect)
    entries

(* -- The suite lints clean ------------------------------------------ *)

let test_suite_clean () =
  List.iter
    (fun p ->
      let r = Scaf_suite.Program.lint p in
      checks
        (Scaf_suite.Program.id p ^ " lints error-free")
        ""
        (Diagnostic.to_summary (Pass.errors r)))
    (Scaf_suite.Registry.all ())

(* -- Cost estimator exactness --------------------------------------- *)

(* The static estimate must equal the number of queries the PDG client
   actually issues for the loop — it is the daemon's admission metric. *)
let test_cost_exact () =
  List.iter
    (fun p ->
      let prog = Scaf_suite.Program.ctx p in
      let s = Cost.of_ctx prog in
      checkb (Scaf_suite.Program.id p ^ " has loops") true (s.Cost.loops <> []);
      List.iter
        (fun (lc : Cost.loop_cost) ->
          checki
            (Scaf_suite.Program.id p ^ " " ^ lc.Cost.lid)
            (List.length (Scaf_pdg.Pdg.queries_of_loop prog lc.Cost.lid))
            lc.Cost.est)
        s.Cost.loops)
    (Scaf_suite.Registry.all ())

(* -- Static no-dependence quick answers ----------------------------- *)

let nodep_src =
  {|
global @a 16
global @b 16

func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %x = load 8, @a
  %p = gep @a, 8
  store 8, %p, %x
  store 8, @b, %x
  %r = call @input(0)
  %q = gep @a, %r
  store 8, %q, %x
  br latch
latch:
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}

let test_static_nodep () =
  let m = Scaf_ir.Parser.parse_exn_msg nodep_src in
  let prog = Scaf_cfg.Progctx.build m in
  let f = Option.get (Scaf_ir.Irmod.find_func m "main") in
  let loads, stores =
    Scaf_ir.Func.fold_instrs f
      (fun (ls, ss) _ (i : Scaf_ir.Instr.t) ->
        match i.Scaf_ir.Instr.kind with
        | Scaf_ir.Instr.Load _ -> (ls @ [ i.Scaf_ir.Instr.id ], ss)
        | Scaf_ir.Instr.Store _ -> (ls, ss @ [ i.Scaf_ir.Instr.id ])
        | _ -> (ls, ss))
      ([], [])
  in
  let load_a = List.nth loads 0 in
  let store_a8 = List.nth stores 0 in
  let store_b = List.nth stores 1 in
  let store_unk = List.nth stores 2 in
  let q src dst cross =
    Scaf_pdg.Pdg.to_query "main:loop" { Scaf_pdg.Pdg.src; dst; cross }
  in
  let yes name qq =
    match Static_nodep.answer prog qq with
    | Some r ->
        checkb (name ^ " is NoModRef") true
          (r.Scaf.Response.result = Scaf.Aresult.RModref Scaf.Aresult.NoModRef);
        checkb (name ^ " is free") true
          (Scaf.Response.Options.has_unconditional r.Scaf.Response.options)
    | None -> Alcotest.failf "%s: expected a static answer" name
  in
  let no name qq =
    checkb (name ^ " falls through") true
      (Option.is_none (Static_nodep.answer prog qq))
  in
  (* distinct globals never overlap, any temporal scope *)
  yes "a vs b intra" (q load_a store_b false);
  yes "a vs b cross" (q load_a store_b true);
  (* same global, provably disjoint byte intervals *)
  yes "a[0:8) vs a[8:16) intra" (q load_a store_a8 false);
  yes "a[0:8) vs a[8:16) cross" (q load_a store_a8 true);
  (* input-dependent offset: nothing provable statically *)
  no "unknown offset" (q load_a store_unk false);
  (* overlapping: same byte interval *)
  no "self overlap" (q store_a8 store_a8 true)

(* -- Edit failures are structured diagnostics ----------------------- *)

let test_edit_diagnostics () =
  let p = Option.get (Scaf_suite.Registry.find "052.alvinn") in
  let e0 = Scaf_suite.Program.epoch p in
  (match
     Scaf_suite.Edit.apply p
       (Scaf_suite.Edit.Insert_instr
          { fname = "nope"; block = "entry"; at = 0; text = "%z = add 1, 2" })
   with
  | Ok _ -> Alcotest.fail "edit to an unknown function succeeded"
  | Error ds ->
      checkb "bad target -> edit.target" true
        (List.exists
           (fun (d : Diagnostic.t) -> d.Diagnostic.code = "edit.target")
           ds));
  checki "epoch unchanged after bad target" e0 (Scaf_suite.Program.epoch p);
  (match
     Scaf_suite.Edit.apply p
       (Scaf_suite.Edit.Insert_instr
          {
            fname = "main";
            block = "entry";
            at = 0;
            text = "%z = add %nosuch, 1";
          })
   with
  | Ok _ -> Alcotest.fail "SSA-breaking edit survived the lint gate"
  | Error ds ->
      checkb "broken SSA -> wf.* error" true
        (List.exists (fun (d : Diagnostic.t) -> Diagnostic.is_error d) ds));
  checki "epoch unchanged after rejected commit" e0
    (Scaf_suite.Program.epoch p)

(* -- Codec round-trips ---------------------------------------------- *)

let test_diagnostic_codec () =
  let all =
    List.concat_map (fun (_, ds, _) -> ds) (corpus ())
    @ (Scaf_suite.Program.lint
         (Option.get (Scaf_suite.Registry.find "181.mcf")))
        .Pass.diagnostics
  in
  checkb "some diagnostics to round-trip" true (all <> []);
  List.iter
    (fun (d : Diagnostic.t) ->
      let d' =
        Protocol.diagnostic_of_json
          (Json.of_string (Json.to_string (Protocol.diagnostic_to_json d)))
      in
      checkb ("diagnostic round-trips: " ^ d.Diagnostic.code) true (d = d'))
    all

(* parse ∘ print ≡ id over every suite program, carried through the
   submission codec: what the daemon registers is what the client holds *)
let test_wire_program_roundtrip () =
  List.iter
    (fun p ->
      let wp =
        {
          Protocol.wp_id = Scaf_suite.Program.id p;
          wp_source = Scaf_suite.Program.source p;
          wp_train = Some (Scaf_suite.Program.train_inputs p);
          wp_ref = Some (Scaf_suite.Program.ref_input p);
        }
      in
      let wp' =
        Protocol.program_of_json
          (Json.of_string (Json.to_string (Protocol.program_to_json wp)))
      in
      checkb (wp.Protocol.wp_id ^ " wire_program round-trips") true (wp = wp');
      let m = Scaf_ir.Parser.parse_exn_msg wp'.Protocol.wp_source in
      checks
        (wp.Protocol.wp_id ^ " parse-print fixpoint")
        wp'.Protocol.wp_source
        (Scaf_ir.Irmod.to_string m))
    (Scaf_suite.Registry.all ())

let test_err_envelope_diags () =
  let diags = lint_source (read_file (Filename.concat fixtures_dir "oob_store.mir")) in
  let e = Protocol.lint_rejected diags in
  match
    Protocol.open_envelope (Json.of_string (Json.to_string (Protocol.err_to_json e)))
  with
  | Ok _ -> Alcotest.fail "lint_rejected parsed as success"
  | Error e' ->
      checks "code survives" e.Protocol.code e'.Protocol.code;
      checkb "diagnostics survive" true (e.Protocol.diags = e'.Protocol.diags)

(* -- Fuzzed JSON codec ---------------------------------------------- *)

(* Arbitrary JSON values, nan/inf-normalized through [Json.float]; byte
   strings exercise the escaper over the whole char range. *)
let gen_json : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_string = string_size ~gen:char (int_bound 12) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.float f) float;
        map (fun s -> Json.String s) gen_string;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun fields -> Json.Obj fields)
                 (list_size (int_bound 4)
                    (pair gen_string (self (n / 2))));
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json print/parse round-trip"
    (QCheck.make ~print:Json.to_string gen_json)
    (fun j -> Json.of_string (Json.to_string j) = j)

let prop_wire_query_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire query round-trip"
    QCheck.(quad string small_nat small_nat bool)
    (fun (wloop, wsrc, wdst, wcross) ->
      let q = { Protocol.wloop; wsrc; wdst; wcross } in
      Protocol.query_of_json
        (Json.of_string (Json.to_string (Protocol.query_to_json q)))
      = q)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "bad-program corpus" `Quick test_bad_corpus;
        Alcotest.test_case "suite lints clean" `Quick test_suite_clean;
        Alcotest.test_case "cost estimator exact" `Quick test_cost_exact;
        Alcotest.test_case "static nodep answers" `Quick test_static_nodep;
        Alcotest.test_case "edit failures are diagnostics" `Quick
          test_edit_diagnostics;
      ] );
    ( "lint-wire",
      [
        Alcotest.test_case "diagnostic codec" `Quick test_diagnostic_codec;
        Alcotest.test_case "wire program round-trip" `Quick
          test_wire_program_roundtrip;
        Alcotest.test_case "error envelope carries diagnostics" `Quick
          test_err_envelope_diags;
        QCheck_alcotest.to_alcotest ~long:false prop_json_roundtrip;
        QCheck_alcotest.to_alcotest ~long:false prop_wire_query_roundtrip;
      ] );
  ]
