(** Tests for the audit layer (`lib/audit`): the shipped ensemble passes,
    a deliberately broken module is caught by both the contradiction and
    oracle passes (and flips the exit code), an asymmetric module earns a
    warning, and the query-plan lint flags each degenerate-config shape. *)

open Scaf
open Scaf_audit

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* One small benchmark keeps the dynamic passes fast. *)
let bench = Option.get (Scaf_suite.Registry.find "052.alvinn")

(* -- the shipped ensemble is clean ----------------------------------- *)

let test_shipped_ensemble_passes () =
  let r = Audit.run ~benchmarks:[ bench ] () in
  checki "exit code 0" 0 (Audit.exit_code r);
  checki "no soundness findings" 0 (Audit.soundness_count r);
  checkb "queries were fanned out" true (r.Audit.queries > 0);
  checki "one card per shipped module" 19 (List.length r.Audit.cards);
  checkb "all three passes at worst informational" true
    (List.for_all
       (fun (f : Finding.t) -> f.Finding.severity = Finding.Info)
       r.Audit.findings)

(* -- a deliberately broken module is caught -------------------------- *)

(* Unconditionally answers assertion-free NoAlias / NoModRef. basic-aa
   proves self-pair alias probes MustAlias (a location trivially
   must-aliases itself), so the contradiction pass must fire; observed
   dependences disprove the free NoDep claims, so the oracle must too. *)
let liar (_ : Scaf_profile.Profiles.t) : Module_api.t list =
  [
    Module_api.make ~name:"liar-aa" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        match q with
        | Query.Alias _ -> Response.free (Aresult.RAlias Aresult.NoAlias)
        | Query.Modref _ -> Response.free (Aresult.RModref Aresult.NoModRef));
  ]

let test_broken_module_fails_the_audit () =
  let r = Audit.run ~extra_modules:liar ~benchmarks:[ bench ] () in
  checki "exit code 1" 1 (Audit.exit_code r);
  checkb "soundness findings present" true (Audit.soundness_count r > 0);
  let against_liar =
    List.filter
      (fun (f : Finding.t) ->
        Finding.is_soundness f
        && Astring_contains.contains f.Finding.modname "liar-aa")
      r.Audit.findings
  in
  checkb "findings name the liar" true (against_liar <> []);
  checkb "contradiction pass fires" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.pass = Finding.Contradiction)
       against_liar);
  checkb "oracle pass fires" true
    (List.exists
       (fun (f : Finding.t) -> f.Finding.pass = Finding.Oracle)
       against_liar);
  (* every soundness finding ships a witness, and it re-parses *)
  List.iter
    (fun (f : Finding.t) ->
      checkb "witness present" true (f.Finding.witness <> "");
      ignore (Scaf_ir.Parser.parse_exn_msg f.Finding.witness))
    against_liar;
  (* the liar's audit card records the unsound answers *)
  let card =
    List.find (fun (c : Oracle.card) -> c.Oracle.cname = "liar-aa") r.Audit.cards
  in
  checkb "card counts unsound answers" true (card.Oracle.unsound > 0)

(* -- an asymmetric module earns a warning ---------------------------- *)

(* Answers free NoAlias only when the two globals are in one lexicographic
   order; the mirrored query (operand swap + flip_temporal) falls back to
   the conservative answer — a precision asymmetry, not a contradiction. *)
let biased (_ : Scaf_profile.Profiles.t) : Module_api.t list =
  [
    Module_api.make ~name:"biased-aa" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        match q with
        | Query.Alias a -> (
            match (a.Query.a1.Query.ptr, a.Query.a2.Query.ptr) with
            | Scaf_ir.Value.Global g1, Scaf_ir.Value.Global g2
              when String.compare g1 g2 < 0 ->
                Response.free (Aresult.RAlias Aresult.NoAlias)
            | _ -> Module_api.no_answer q)
        | Query.Modref _ -> Module_api.no_answer q);
  ]

let test_asymmetric_module_warned () =
  let r = Audit.run ~extra_modules:biased ~benchmarks:[ bench ] () in
  (* distinct globals never alias, so the answers are sound... *)
  checki "no soundness findings" 0 (Audit.soundness_count r);
  (* ...but the asymmetry is reported *)
  checkb "asymmetry warning issued" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.severity = Finding.Warning
         && f.Finding.modname = "biased-aa"
         && Astring_contains.contains f.Finding.detail "asymmetric")
       r.Audit.findings)

(* -- query-plan lint -------------------------------------------------- *)

let stub ?caps name ~factored : Module_api.t =
  Module_api.make ?caps ~name ~kind:Module_api.Memory ~factored (fun _ q ->
      Module_api.no_answer q)

let lint_with (modules : Module_api.t list) : Finding.t list =
  Lint.check (Orchestrator.default_config modules)

let has_detail (fs : Finding.t list) (needle : string) : bool =
  List.exists
    (fun (f : Finding.t) ->
      Astring_contains.contains f.Finding.detail needle)
    fs

let test_lint_duplicate_names () =
  let fs = lint_with [ stub "m" ~factored:false; stub "m" ~factored:false ] in
  checkb "duplicate name flagged" true (has_detail fs "duplicate module name")

let test_lint_timeout_without_clock () =
  let config =
    {
      (Orchestrator.default_config [ stub "m" ~factored:false ]) with
      Orchestrator.bailout = Orchestrator.Timeout 1.0;
    }
  in
  checkb "clock-less Timeout flagged" true
    (has_detail (Lint.check config) "without a clock")

let test_lint_module_budget_without_clock () =
  let config =
    {
      (Orchestrator.default_config [ stub "m" ~factored:false ]) with
      Orchestrator.module_budget = Some 1.0;
    }
  in
  checkb "clock-less module budget flagged" true
    (has_detail (Lint.check config) "module_budget without a clock")

let test_lint_empty_caps () =
  let fs =
    lint_with
      [
        stub "mute"
          ~caps:{ Module_api.answers = []; emits = []; reach = Module_api.Reach_global; uses_profile = false }
          ~factored:false;
      ]
  in
  checkb "empty answers flagged" true
    (has_detail fs "no answerable query class")

let test_lint_unreachable_module () =
  (* the client asks modref(instr, instr); nothing emits CModref_loc, so a
     module answering only that class can never fire *)
  let fs =
    lint_with
      [
        stub "live"
          ~caps:
            {
              Module_api.answers = [ Module_api.CModref_instr ];
              emits = [ Module_api.CAlias ];
              reach = Module_api.Reach_global;
              uses_profile = false;
            }
          ~factored:true;
        stub "dead"
          ~caps:
            {
              Module_api.answers = [ Module_api.CModref_loc ];
              emits = [];
              reach = Module_api.Reach_global;
              uses_profile = false;
            }
          ~factored:false;
      ]
  in
  checkb "unreachable module flagged" true (has_detail fs "can never fire");
  checkb "only the dead module is flagged" true
    (List.for_all
       (fun (f : Finding.t) ->
         (not (Astring_contains.contains f.Finding.detail "can never fire"))
         || f.Finding.modname = "dead")
       fs)

let test_lint_premise_cycle_is_info () =
  let fs =
    lint_with
      [
        stub "a"
          ~caps:
            {
              Module_api.answers = [ Module_api.CModref_instr ];
              emits = [ Module_api.CAlias ];
              reach = Module_api.Reach_global;
              uses_profile = false;
            }
          ~factored:true;
        stub "b"
          ~caps:
            {
              Module_api.answers = [ Module_api.CAlias ];
              emits = [ Module_api.CModref_instr ];
              reach = Module_api.Reach_global;
              uses_profile = false;
            }
          ~factored:true;
      ]
  in
  let cycles =
    List.filter
      (fun (f : Finding.t) ->
        Astring_contains.contains f.Finding.detail "premise cycle")
      fs
  in
  checki "one cycle" 1 (List.length cycles);
  checkb "reported at Info" true
    (List.for_all
       (fun (f : Finding.t) -> f.Finding.severity = Finding.Info)
       cycles)

let test_lint_shipped_config_clean () =
  (* the shipped wiring lints clean apart from the intentional, bounded
     premise cycle among the alias modules *)
  let profiles =
    Scaf_profile.Profiler.profile_module
      ~inputs:(Scaf_suite.Program.train_inputs bench)
      (Scaf_suite.Program.program bench)
  in
  let fs = Lint.check (Audit.scaf_config profiles) in
  checkb "only Info findings" true
    (List.for_all
       (fun (f : Finding.t) -> f.Finding.severity = Finding.Info)
       fs)

let suite =
  [
    ( "audit",
      [
        Alcotest.test_case "shipped ensemble passes" `Slow
          test_shipped_ensemble_passes;
        Alcotest.test_case "broken module fails the audit" `Slow
          test_broken_module_fails_the_audit;
        Alcotest.test_case "asymmetric module warned" `Slow
          test_asymmetric_module_warned;
        Alcotest.test_case "lint: duplicate names" `Quick
          test_lint_duplicate_names;
        Alcotest.test_case "lint: Timeout without clock" `Quick
          test_lint_timeout_without_clock;
        Alcotest.test_case "lint: module budget without clock" `Quick
          test_lint_module_budget_without_clock;
        Alcotest.test_case "lint: empty capabilities" `Quick
          test_lint_empty_caps;
        Alcotest.test_case "lint: unreachable module" `Quick
          test_lint_unreachable_module;
        Alcotest.test_case "lint: premise cycle is Info" `Quick
          test_lint_premise_cycle_is_info;
        Alcotest.test_case "lint: shipped config clean" `Quick
          test_lint_shipped_config_clean;
      ] );
  ]
