(** Tests for the analysis-as-a-service layer ([lib/server]): the JSON
    codec, the length-prefixed wire protocol's edge cases (truncated
    prefix, oversized frame, malformed payload), the protocol codecs,
    the admission queue's watermark state machine, in-flight coalescing
    under concurrent clients (observable via the engine's counters), the
    deadline path, an end-to-end daemon round-trip, and the full server
    chaos matrix. *)

open Scaf_server

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* -- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\t\x01é");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.1);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("nested", Json.Obj [ ("x", Json.Float 1e-300) ]);
      ]
  in
  let j' = Json.of_string (Json.to_string j) in
  checkb "round-trips structurally" true (j = j')

let test_json_float_bit_exact () =
  (* %.17g printing must round-trip every binary64 exactly: this is what
     makes the daemon's fig8 replay byte-identical to batch *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float f' ->
          checkb (Printf.sprintf "%h survives" f) true (Int64.equal
            (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | _ -> Alcotest.fail "float did not parse back as Float")
    [ 0.1; 1.0 /. 3.0; 96.174999999999997; 1e300; -0.0; 4.9e-324 ]

let test_json_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "accepted malformed %S" s
      | exception Json.Parse_error _ -> ())
    [ "{nope"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; ""; "nul" ]

(* -- Wire ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_socketpair (fun a b ->
      let j = Json.Obj [ ("op", Json.String "ping") ] in
      (match Wire.write_frame a j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Wire.error_to_string e));
      match Wire.read_frame b with
      | Ok j' -> checkb "frame round-trips" true (j = j')
      | Error e -> Alcotest.failf "read: %s" (Wire.error_to_string e))

let test_wire_truncated_prefix () =
  (* peer dies after two bytes of the length prefix *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00" 0 2);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "parsed a frame from half a prefix"
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (Wire.error_to_string e))

let test_wire_truncated_payload () =
  with_socketpair (fun a b ->
      (* declare 10 payload bytes, deliver 3, hang up *)
      ignore (Unix.write_substring a "\x00\x00\x00\x0aabc" 0 7);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "parsed a truncated payload"
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (Wire.error_to_string e))

let test_wire_oversized () =
  with_socketpair (fun a b ->
      (* a 256 MiB declaration must be rejected from the prefix alone,
         without the reader trying to buffer any payload *)
      ignore (Unix.write_substring a "\x10\x00\x00\x00" 0 4);
      match Wire.read_frame ~max_len:Wire.default_max_len b with
      | Error (Wire.Oversized n) -> checki "declared length" 0x10000000 n
      | Ok _ -> Alcotest.fail "accepted an oversized frame"
      | Error e ->
          Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e))

let test_wire_bad_json () =
  with_socketpair (fun a b ->
      let payload = "{broken" in
      let n = String.length payload in
      let prefix =
        Printf.sprintf "%c%c%c%c" '\x00' '\x00' '\x00' (Char.chr n)
      in
      ignore (Unix.write_substring a (prefix ^ payload) 0 (4 + n));
      match Wire.read_frame b with
      | Error (Wire.Bad_json _) -> ()
      | Ok _ -> Alcotest.fail "accepted broken JSON"
      | Error e ->
          Alcotest.failf "expected Bad_json, got %s" (Wire.error_to_string e))

let test_wire_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Closed -> ()
      | Ok _ -> Alcotest.fail "read a frame from a closed peer"
      | Error e ->
          Alcotest.failf "expected Closed, got %s" (Wire.error_to_string e))

(* -- Protocol ------------------------------------------------------- *)

let wq = { Protocol.wloop = "main_loop"; wsrc = 3; wdst = 7; wcross = true }

let test_protocol_request_roundtrip () =
  List.iter
    (fun r ->
      let r' = Protocol.request_of_json (Protocol.request_to_json r) in
      checkb "request round-trips" true (r = r'))
    [
      Protocol.Hello { client = "t" };
      Protocol.Ping;
      Protocol.Ask { bench = "164.gzip"; q = wq; deadline_ms = Some 12.5 };
      Protocol.Ask { bench = "164.gzip"; q = wq; deadline_ms = None };
      Protocol.Ask_many
        { bench = "b"; qs = [ wq; { wq with Protocol.wcross = false } ];
          deadline_ms = None };
      Protocol.Queries { bench = "b" };
      Protocol.Report { bench = "b" };
      Protocol.Stats;
      Protocol.Shutdown;
    ]

let test_protocol_unknown_op () =
  match Protocol.request_of_json (Json.Obj [ ("op", Json.String "nope") ]) with
  | _ -> Alcotest.fail "accepted unknown op"
  | exception Json.Parse_error _ -> ()

let test_protocol_answer_roundtrip () =
  let a =
    {
      Protocol.a_result = "NoModRef";
      a_nodep = true;
      a_cost = 12.25;
      a_options = 3;
      a_unconditional = false;
      a_provenance = [ "points-to"; "read-only" ];
      a_degraded = Some "load_shed:cheap-modules";
      a_coalesced = true;
    }
  in
  let a' = Protocol.answer_of_json (Protocol.answer_to_json a) in
  checkb "answer round-trips" true (a = a')

let test_protocol_err_envelope () =
  let e = Protocol.overloaded ~retry_after_ms:50.0 in
  match Protocol.open_envelope (Json.of_string
    (Json.to_string (Protocol.err_to_json e))) with
  | Error e' ->
      checks "code" "overloaded" e'.Protocol.code;
      checkb "retryable" true e'.Protocol.retryable;
      checkb "hint" true (e'.Protocol.retry_after_ms = Some 50.0)
  | Ok _ -> Alcotest.fail "error envelope opened as ok"

(* -- Admission ------------------------------------------------------ *)

let adm_config =
  {
    Admission.capacity = 4;
    cheap_watermark = 1;
    cache_watermark = 2;
    retry_after_ms = 25.0;
  }

let test_admission_watermarks () =
  let q = Admission.create adm_config in
  (* queue depth at each submission decides that job's degrade level *)
  (match Admission.submit q 0 with
  | Admission.Admitted Admission.Full -> ()
  | _ -> Alcotest.fail "depth 0 must admit Full");
  (match Admission.submit q 1 with
  | Admission.Admitted Admission.Cheap -> ()
  | _ -> Alcotest.fail "depth 1 >= cheap_watermark must shed to Cheap");
  (match Admission.submit q 2 with
  | Admission.Admitted Admission.Cached_only -> ()
  | _ -> Alcotest.fail "depth 2 >= cache_watermark must shed to Cached_only");
  (match Admission.submit q 3 with
  | Admission.Admitted Admission.Cached_only -> ()
  | _ -> Alcotest.fail "depth 3 still admits Cached_only");
  (match Admission.submit q 4 with
  | Admission.Overloaded hint ->
      checkb "retry-after hint" true (hint = 25.0)
  | _ -> Alcotest.fail "at capacity must reject");
  let s = Admission.stats q in
  checki "depth" 4 s.Admission.depth;
  checki "admitted full" 1 s.Admission.admitted_full;
  checki "shed cheap" 1 s.Admission.shed_cheap;
  checki "shed cached" 2 s.Admission.shed_cached;
  checki "rejected" 1 s.Admission.rejected;
  checks "state" "rejecting" (Admission.state_name q)

let test_admission_close_drains () =
  let q = Admission.create adm_config in
  ignore (Admission.submit q 10);
  ignore (Admission.submit q 11);
  Admission.close q;
  (* already-admitted jobs still drain after close ... *)
  checkb "drains first" true
    (match Admission.pop q with Some (10, _) -> true | _ -> false);
  checkb "drains second" true
    (match Admission.pop q with Some (11, _) -> true | _ -> false);
  (* ... then pop returns None instead of blocking forever *)
  checkb "then None" true (Admission.pop q = None);
  (match Admission.submit q 12 with
  | Admission.Closed -> ()
  | _ -> Alcotest.fail "closed queue must refuse new work");
  checks "state" "closed" (Admission.state_name q)

let test_admission_pop_blocks_until_submit () =
  let q = Admission.create adm_config in
  let got = ref None in
  let t = Thread.create (fun () -> got := Admission.pop q) () in
  Thread.delay 0.05;
  ignore (Admission.submit q 99);
  Thread.join t;
  checkb "woken with the job" true
    (match !got with Some (99, _) -> true | _ -> false)

(* -- Engine: coalescing, shedding, deadlines ------------------------ *)

let bench_name = "052.alvinn"

let shared_engine =
  (* loading + profiling once for all engine tests; [wrap] adds a small
     per-module delay so concurrent identical queries overlap in flight *)
  lazy
    (let wrap mods =
       List.map
         (fun m ->
           let open Scaf in
           {
             m with
             Module_api.answer =
               (fun mctx q ->
                 Thread.delay 0.002;
                 m.Module_api.answer mctx q);
           })
         mods
     in
     let b =
       match Scaf_suite.Registry.find bench_name with
       | Some b -> b
       | None -> Alcotest.failf "missing benchmark %s" bench_name
     in
     Engine.create ~wrap ~benchmarks:[ b ] ())

let first_query eng =
  let b = Engine.find_bench eng bench_name |> Option.get in
  match
    Engine.queries_json b
    |> Json.mem_or "loops" ~default:Json.Null
  with
  | Json.List (first_loop :: _) -> (
      match
        Json.mem_or "queries" ~default:Json.Null first_loop
      with
      | Json.List (q :: _) -> Protocol.query_of_json q
      | _ -> Alcotest.fail "loop has no queries")
  | _ -> Alcotest.fail "no loops"

let test_engine_coalescing () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let q = first_query eng in
  let before = Engine.coalesced_count eng in
  let results = Array.make 8 None in
  let threads =
    Array.init 8 (fun i ->
        Thread.create
          (fun () ->
            let w = Engine.worker eng in
            results.(i) <-
              Some (Engine.answer w ~degrade:Admission.Full ~deadline:None b q))
          ())
  in
  Array.iter Thread.join threads;
  let answers =
    Array.to_list results |> List.filter_map Fun.id
  in
  checki "all eight answered" 8 (List.length answers);
  (* identical concurrent queries must agree ... *)
  let r0 = (List.hd answers).Protocol.a_result in
  List.iter
    (fun (a : Protocol.answer) ->
      checks "answers agree" r0 a.Protocol.a_result;
      checkb "none degraded" true (a.Protocol.a_degraded = None))
    answers;
  (* ... and at least one must have ridden another's in-flight
     evaluation: the flight table, not just the cache, absorbed the
     hammering (visible as either a coalesced answer or a cache hit) *)
  let coalesced = Engine.coalesced_count eng - before in
  let cache_hits = (Scaf.Qcache.stats b.Engine.cache).Scaf.Qcache.hits in
  checkb "hammering was absorbed" true (coalesced > 0 || cache_hits > 0)

let test_engine_shed_cached_only () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let q = { (first_query eng) with Protocol.wsrc = 0; wdst = 0 } in
  let a = Engine.answer w ~degrade:Admission.Cached_only ~deadline:None b q in
  (match a.Protocol.a_degraded with
  | Some ("load_shed:cached" | "load_shed:cached-miss") -> ()
  | other ->
      Alcotest.failf "expected a load_shed:cached tag, got %s"
        (Option.value ~default:"<none>" other));
  (* a cached-only miss answers bottom: sound, never fabricated *)
  if a.Protocol.a_degraded = Some "load_shed:cached-miss" then
    checkb "miss answers bottom (no nodep claim)" false a.Protocol.a_nodep

let test_engine_shed_cheap () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let a =
    Engine.answer w ~degrade:Admission.Cheap ~deadline:None b (first_query eng)
  in
  checkb "tagged cheap-modules" true
    (a.Protocol.a_degraded = Some "load_shed:cheap-modules")

let test_engine_deadline_expired () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let q = { (first_query eng) with Protocol.wcross = false } in
  let expired = Unix.gettimeofday () -. 1.0 in
  let a = Engine.answer w ~degrade:Admission.Full ~deadline:(Some expired) b q in
  checkb "tagged deadline" true (a.Protocol.a_degraded = Some "deadline")

(* -- Daemon e2e ----------------------------------------------------- *)

let scratch_sock () =
  Filename.temp_file "scaf-test" ".sock" |> fun p ->
  Sys.remove p;
  p

let test_daemon_end_to_end () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg =
    { (Daemon.default_config ~socket_path:sock ()) with
      Daemon.benchmarks = [ b ] }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let c, benches = Client.connect ~name:"test" sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          checkb "hello lists the benchmark" true (benches = [ bench_name ]);
          Client.ping c;
          let qs = Client.queries c ~bench:bench_name in
          checkb "has hot loops" true (qs <> []);
          let loop, _, wqs = List.hd qs in
          let a = Client.ask c ~bench:bench_name
              { (List.hd wqs) with Protocol.wloop = loop } in
          checkb "answered undegraded" true (a.Protocol.a_degraded = None);
          (* stats must expose the daemon health counters *)
          let st = Client.stats c in
          let requests =
            Json.mem_or "metrics" ~default:Json.Null st
            |> Json.mem_or "counters" ~default:Json.Null
            |> Json.int_member "server.requests"
          in
          checkb "metrics count requests" true (requests > 0);
          checks "admission state" "accepting"
            (Json.mem_or "admission" ~default:Json.Null st
            |> Json.string_member "state")))

(* The incremental wire path: a client commits an edit to the daemon's
   resident program; the daemon invalidates, bumps the epoch, and keeps
   answering — no restart, no reload. *)
let test_daemon_edit_roundtrip () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg =
    { (Daemon.default_config ~socket_path:sock ()) with
      Daemon.benchmarks = [ b ] }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let c, _ = Client.connect ~name:"edit-test" sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let ask_all () =
            List.concat_map
              (fun (loop, _, wqs) ->
                List.map
                  (fun wq ->
                    Client.ask c ~bench:bench_name
                      { wq with Protocol.wloop = loop })
                  wqs)
              (Client.queries c ~bench:bench_name)
          in
          let before = ask_all () in
          checkb "workload answered" true (before <> []);
          let r = Client.edit c ~bench:bench_name [ Protocol.WAuto ] in
          checki "edit bumps the epoch" 1 r.Protocol.e_epoch;
          checkb "edit names a touched function" true
            (r.Protocol.e_touched_funcs <> []);
          checkb "invalidation retained entries" true (r.Protocol.e_retained > 0);
          checkb "invalidation evicted entries" true (r.Protocol.e_evicted > 0);
          let after = ask_all () in
          checki "same workload shape after edit" (List.length before)
            (List.length after);
          List.iter
            (fun (a : Protocol.answer) ->
              checkb "post-edit answers undegraded" true
                (a.Protocol.a_degraded = None))
            after;
          (* a second edit round-trips against the already-edited program *)
          let r2 = Client.edit c ~bench:bench_name [ Protocol.WAuto ] in
          checki "second edit reaches epoch 2" 2 r2.Protocol.e_epoch))

(* -- the full chaos matrix ------------------------------------------ *)

let test_server_chaos_matrix () =
  let outcomes = Scaf_faultinject.Server_chaos.run_server_chaos ~seed:2026 () in
  checkb "at least 20 scenarios" true (List.length outcomes >= 20);
  List.iter
    (fun (o : Scaf_faultinject.Server_chaos.server_outcome) ->
      if not o.Scaf_faultinject.Server_chaos.s_ok then
        Alcotest.failf "server chaos %s: %s"
          o.Scaf_faultinject.Server_chaos.s_scenario
          o.Scaf_faultinject.Server_chaos.s_detail)
    outcomes

let suite =
  [
    ( "server-json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "float bit-exact" `Quick test_json_float_bit_exact;
        Alcotest.test_case "malformed rejected" `Quick test_json_malformed;
      ] );
    ( "server-wire",
      [
        Alcotest.test_case "frame round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "truncated prefix" `Quick test_wire_truncated_prefix;
        Alcotest.test_case "truncated payload" `Quick
          test_wire_truncated_payload;
        Alcotest.test_case "oversized rejected from prefix" `Quick
          test_wire_oversized;
        Alcotest.test_case "bad json payload" `Quick test_wire_bad_json;
        Alcotest.test_case "closed peer" `Quick test_wire_closed;
      ] );
    ( "server-protocol",
      [
        Alcotest.test_case "request round-trips" `Quick
          test_protocol_request_roundtrip;
        Alcotest.test_case "unknown op rejected" `Quick
          test_protocol_unknown_op;
        Alcotest.test_case "answer round-trips" `Quick
          test_protocol_answer_roundtrip;
        Alcotest.test_case "error envelope" `Quick test_protocol_err_envelope;
      ] );
    ( "server-admission",
      [
        Alcotest.test_case "watermark state machine" `Quick
          test_admission_watermarks;
        Alcotest.test_case "close drains then refuses" `Quick
          test_admission_close_drains;
        Alcotest.test_case "pop blocks until submit" `Quick
          test_admission_pop_blocks_until_submit;
      ] );
    ( "server-engine",
      [
        Alcotest.test_case "concurrent hammering coalesces" `Quick
          test_engine_coalescing;
        Alcotest.test_case "cached-only shedding" `Quick
          test_engine_shed_cached_only;
        Alcotest.test_case "cheap-modules shedding" `Quick
          test_engine_shed_cheap;
        Alcotest.test_case "expired deadline degrades" `Quick
          test_engine_deadline_expired;
      ] );
    ( "server-daemon",
      [
        Alcotest.test_case "end-to-end round-trip" `Quick
          test_daemon_end_to_end;
        Alcotest.test_case "edit round-trips without restart" `Quick
          test_daemon_edit_roundtrip;
        Alcotest.test_case "chaos matrix all green" `Slow
          test_server_chaos_matrix;
      ] );
  ]
