(** Tests for the analysis-as-a-service layer ([lib/server]): the JSON
    codec, the length-prefixed wire protocol's edge cases (truncated
    prefix, oversized frame, malformed payload), the protocol codecs,
    the admission queue's watermark state machine, in-flight coalescing
    under concurrent clients (observable via the engine's counters), the
    deadline path, an end-to-end daemon round-trip, and the full server
    chaos matrix. *)

open Scaf_server

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* -- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\t\x01é");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.1);
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("nested", Json.Obj [ ("x", Json.Float 1e-300) ]);
      ]
  in
  let j' = Json.of_string (Json.to_string j) in
  checkb "round-trips structurally" true (j = j')

let test_json_float_bit_exact () =
  (* %.17g printing must round-trip every binary64 exactly: this is what
     makes the daemon's fig8 replay byte-identical to batch *)
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float f' ->
          checkb (Printf.sprintf "%h survives" f) true (Int64.equal
            (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | _ -> Alcotest.fail "float did not parse back as Float")
    [ 0.1; 1.0 /. 3.0; 96.174999999999997; 1e300; -0.0; 4.9e-324 ]

let test_json_malformed () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "accepted malformed %S" s
      | exception Json.Parse_error _ -> ())
    [ "{nope"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; ""; "nul" ]

(* -- Wire ----------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_socketpair (fun a b ->
      let j = Json.Obj [ ("op", Json.String "ping") ] in
      (match Wire.write_frame a j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Wire.error_to_string e));
      match Wire.read_frame b with
      | Ok j' -> checkb "frame round-trips" true (j = j')
      | Error e -> Alcotest.failf "read: %s" (Wire.error_to_string e))

let test_wire_truncated_prefix () =
  (* peer dies after two bytes of the length prefix *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00" 0 2);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "parsed a frame from half a prefix"
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (Wire.error_to_string e))

let test_wire_truncated_payload () =
  with_socketpair (fun a b ->
      (* declare 10 payload bytes, deliver 3, hang up *)
      ignore (Unix.write_substring a "\x00\x00\x00\x0aabc" 0 7);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Truncated _) -> ()
      | Ok _ -> Alcotest.fail "parsed a truncated payload"
      | Error e ->
          Alcotest.failf "expected Truncated, got %s" (Wire.error_to_string e))

let test_wire_oversized () =
  with_socketpair (fun a b ->
      (* a 256 MiB declaration must be rejected from the prefix alone,
         without the reader trying to buffer any payload *)
      ignore (Unix.write_substring a "\x10\x00\x00\x00" 0 4);
      match Wire.read_frame ~max_len:Wire.default_max_len b with
      | Error (Wire.Oversized n) -> checki "declared length" 0x10000000 n
      | Ok _ -> Alcotest.fail "accepted an oversized frame"
      | Error e ->
          Alcotest.failf "expected Oversized, got %s" (Wire.error_to_string e))

let test_wire_bad_json () =
  with_socketpair (fun a b ->
      let payload = "{broken" in
      let n = String.length payload in
      let prefix =
        Printf.sprintf "%c%c%c%c" '\x00' '\x00' '\x00' (Char.chr n)
      in
      ignore (Unix.write_substring a (prefix ^ payload) 0 (4 + n));
      match Wire.read_frame b with
      | Error (Wire.Bad_json _) -> ()
      | Ok _ -> Alcotest.fail "accepted broken JSON"
      | Error e ->
          Alcotest.failf "expected Bad_json, got %s" (Wire.error_to_string e))

let test_wire_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Closed -> ()
      | Ok _ -> Alcotest.fail "read a frame from a closed peer"
      | Error e ->
          Alcotest.failf "expected Closed, got %s" (Wire.error_to_string e))

(* -- Protocol ------------------------------------------------------- *)

let wq = { Protocol.wloop = "main_loop"; wsrc = 3; wdst = 7; wcross = true }

let test_protocol_request_roundtrip () =
  List.iter
    (fun r ->
      let r' = Protocol.request_of_json (Protocol.request_to_json r) in
      checkb "request round-trips" true (r = r'))
    [
      Protocol.Hello { client = "t" };
      Protocol.Ping;
      Protocol.Ask { bench = "164.gzip"; q = wq; deadline_ms = Some 12.5 };
      Protocol.Ask { bench = "164.gzip"; q = wq; deadline_ms = None };
      Protocol.Ask_many
        { bench = "b"; qs = [ wq; { wq with Protocol.wcross = false } ];
          deadline_ms = None; stream = false };
      Protocol.Ask_many
        { bench = "b"; qs = [ wq ]; deadline_ms = Some 7.0; stream = true };
      Protocol.Cancel;
      Protocol.Queries { bench = "b" };
      Protocol.Report { bench = "b" };
      Protocol.Stats;
      Protocol.Shutdown;
    ]

let test_protocol_version_envelope () =
  (* every request envelope carries the protocol version, and the gate
     reads it back; a version-less envelope reads as a v1 client *)
  List.iter
    (fun r ->
      checkb "request carries v" true
        (Protocol.request_version (Protocol.request_to_json r)
        = Some Protocol.version))
    [ Protocol.Ping; Protocol.Cancel; Protocol.Stats ];
  checki "current version" 2 Protocol.version;
  checkb "missing v reads as pre-versioned" true
    (Protocol.request_version (Json.Obj [ ("op", Json.String "ping") ]) = None);
  let e = Protocol.version_mismatch ~got:(Some 99) in
  checks "code" "version_mismatch" e.Protocol.code;
  checkb "not retryable" false e.Protocol.retryable;
  (* the message must be actionable: name both versions and say what to
     do about it *)
  checkb "message names both versions" true
    (let mem sub s =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     mem "99" e.Protocol.msg && mem "2" e.Protocol.msg
     && mem "rebuild" e.Protocol.msg)

let test_protocol_stream_frames () =
  let a =
    {
      Protocol.a_result = "ModRef";
      a_nodep = false;
      a_cost = 3.5;
      a_options = 2;
      a_unconditional = true;
      a_provenance = [ "shape" ];
      a_degraded = None;
      a_coalesced = false;
    }
  in
  let reparse j = Json.of_string (Json.to_string j) in
  (match Protocol.stream_frame_of_json (reparse (Protocol.stream_item_to_json 4 a)) with
  | Protocol.Sitem (4, a') -> checkb "item round-trips" true (a = a')
  | _ -> Alcotest.fail "item frame did not parse as Sitem 4");
  checkb "heartbeat recognized" true
    (Protocol.is_heartbeat (reparse Protocol.stream_heartbeat_json));
  (match Protocol.stream_frame_of_json (reparse Protocol.stream_heartbeat_json) with
  | Protocol.Sheartbeat -> ()
  | _ -> Alcotest.fail "heartbeat frame did not parse as Sheartbeat");
  let s = { Protocol.st_count = 9; st_shed = 2; st_cancelled = true } in
  (match Protocol.stream_frame_of_json (reparse (Protocol.stream_end_to_json s)) with
  | Protocol.Send s' -> checkb "summary round-trips" true (s = s')
  | _ -> Alcotest.fail "end frame did not parse as Send");
  match
    Protocol.stream_frame_of_json (Protocol.ok [ ("pong", Json.Bool true) ])
  with
  | Protocol.Snot_stream -> ()
  | _ -> Alcotest.fail "plain reply misread as a stream frame"

let test_protocol_unknown_op () =
  match Protocol.request_of_json (Json.Obj [ ("op", Json.String "nope") ]) with
  | _ -> Alcotest.fail "accepted unknown op"
  | exception Json.Parse_error _ -> ()

let test_protocol_answer_roundtrip () =
  let a =
    {
      Protocol.a_result = "NoModRef";
      a_nodep = true;
      a_cost = 12.25;
      a_options = 3;
      a_unconditional = false;
      a_provenance = [ "points-to"; "read-only" ];
      a_degraded = Some "load_shed:cheap-modules";
      a_coalesced = true;
    }
  in
  let a' = Protocol.answer_of_json (Protocol.answer_to_json a) in
  checkb "answer round-trips" true (a = a')

let test_protocol_err_envelope () =
  let e = Protocol.overloaded ~retry_after_ms:50.0 in
  match Protocol.open_envelope (Json.of_string
    (Json.to_string (Protocol.err_to_json e))) with
  | Error e' ->
      checks "code" "overloaded" e'.Protocol.code;
      checkb "retryable" true e'.Protocol.retryable;
      checkb "hint" true (e'.Protocol.retry_after_ms = Some 50.0)
  | Ok _ -> Alcotest.fail "error envelope opened as ok"

(* -- Admission ------------------------------------------------------ *)

let adm_config =
  {
    Admission.capacity = 4;
    cheap_watermark = 1;
    cache_watermark = 2;
    retry_after_ms = 25.0;
  }

let test_admission_watermarks () =
  let q = Admission.create adm_config in
  (* queue depth at each submission decides that job's degrade level *)
  (match Admission.submit q 0 with
  | Admission.Admitted Admission.Full -> ()
  | _ -> Alcotest.fail "depth 0 must admit Full");
  (match Admission.submit q 1 with
  | Admission.Admitted Admission.Cheap -> ()
  | _ -> Alcotest.fail "depth 1 >= cheap_watermark must shed to Cheap");
  (match Admission.submit q 2 with
  | Admission.Admitted Admission.Cached_only -> ()
  | _ -> Alcotest.fail "depth 2 >= cache_watermark must shed to Cached_only");
  (match Admission.submit q 3 with
  | Admission.Admitted Admission.Cached_only -> ()
  | _ -> Alcotest.fail "depth 3 still admits Cached_only");
  (match Admission.submit q 4 with
  | Admission.Overloaded hint ->
      checkb "retry-after hint" true (hint = 25.0)
  | _ -> Alcotest.fail "at capacity must reject");
  let s = Admission.stats q in
  checki "depth" 4 s.Admission.depth;
  checki "admitted full" 1 s.Admission.admitted_full;
  checki "shed cheap" 1 s.Admission.shed_cheap;
  checki "shed cached" 2 s.Admission.shed_cached;
  checki "rejected" 1 s.Admission.rejected;
  checks "state" "rejecting" (Admission.state_name q)

let test_admission_close_drains () =
  let q = Admission.create adm_config in
  ignore (Admission.submit q 10);
  ignore (Admission.submit q 11);
  Admission.close q;
  (* already-admitted jobs still drain after close ... *)
  checkb "drains first" true
    (match Admission.pop q with Some (10, _) -> true | _ -> false);
  checkb "drains second" true
    (match Admission.pop q with Some (11, _) -> true | _ -> false);
  (* ... then pop returns None instead of blocking forever *)
  checkb "then None" true (Admission.pop q = None);
  (match Admission.submit q 12 with
  | Admission.Closed -> ()
  | _ -> Alcotest.fail "closed queue must refuse new work");
  checks "state" "closed" (Admission.state_name q)

let test_admission_pop_blocks_until_submit () =
  let q = Admission.create adm_config in
  let got = ref None in
  let t = Thread.create (fun () -> got := Admission.pop q) () in
  Thread.delay 0.05;
  ignore (Admission.submit q 99);
  Thread.join t;
  checkb "woken with the job" true
    (match !got with Some (99, _) -> true | _ -> false)

(* -- Engine: coalescing, shedding, deadlines ------------------------ *)

let bench_name = "052.alvinn"

let shared_engine =
  (* loading + profiling once for all engine tests; [wrap] adds a small
     per-module delay so concurrent identical queries overlap in flight *)
  lazy
    (let wrap mods =
       List.map
         (fun m ->
           let open Scaf in
           {
             m with
             Module_api.answer =
               (fun mctx q ->
                 Thread.delay 0.002;
                 m.Module_api.answer mctx q);
           })
         mods
     in
     let b =
       match Scaf_suite.Registry.find bench_name with
       | Some b -> b
       | None -> Alcotest.failf "missing benchmark %s" bench_name
     in
     Engine.create ~wrap ~benchmarks:[ b ] ())

let first_query eng =
  let b = Engine.find_bench eng bench_name |> Option.get in
  match
    Engine.queries_json b
    |> Json.mem_or "loops" ~default:Json.Null
  with
  | Json.List (first_loop :: _) -> (
      match
        Json.mem_or "queries" ~default:Json.Null first_loop
      with
      | Json.List (q :: _) -> Protocol.query_of_json q
      | _ -> Alcotest.fail "loop has no queries")
  | _ -> Alcotest.fail "no loops"

let test_engine_coalescing () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let q = first_query eng in
  let before = Engine.coalesced_count eng in
  let results = Array.make 8 None in
  let threads =
    Array.init 8 (fun i ->
        Thread.create
          (fun () ->
            let w = Engine.worker eng in
            results.(i) <-
              Some (Engine.answer w ~degrade:Admission.Full ~deadline:None b q))
          ())
  in
  Array.iter Thread.join threads;
  let answers =
    Array.to_list results |> List.filter_map Fun.id
  in
  checki "all eight answered" 8 (List.length answers);
  (* identical concurrent queries must agree ... *)
  let r0 = (List.hd answers).Protocol.a_result in
  List.iter
    (fun (a : Protocol.answer) ->
      checks "answers agree" r0 a.Protocol.a_result;
      checkb "none degraded" true (a.Protocol.a_degraded = None))
    answers;
  (* ... and at least one must have ridden another's in-flight
     evaluation: the flight table, not just the cache, absorbed the
     hammering (visible as either a coalesced answer or a cache hit) *)
  let coalesced = Engine.coalesced_count eng - before in
  let cache_hits =
    (Scaf.Qcache.snapshot b.Engine.cache).Scaf.Qcache.Snapshot.hits
  in
  checkb "hammering was absorbed" true (coalesced > 0 || cache_hits > 0)

let test_engine_shed_cached_only () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let q = { (first_query eng) with Protocol.wsrc = 0; wdst = 0 } in
  let a = Engine.answer w ~degrade:Admission.Cached_only ~deadline:None b q in
  (match a.Protocol.a_degraded with
  | Some ("load_shed:cached" | "load_shed:cached-miss") -> ()
  | other ->
      Alcotest.failf "expected a load_shed:cached tag, got %s"
        (Option.value ~default:"<none>" other));
  (* a cached-only miss answers bottom: sound, never fabricated *)
  if a.Protocol.a_degraded = Some "load_shed:cached-miss" then
    checkb "miss answers bottom (no nodep claim)" false a.Protocol.a_nodep

let test_engine_shed_cheap () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let a =
    Engine.answer w ~degrade:Admission.Cheap ~deadline:None b (first_query eng)
  in
  checkb "tagged cheap-modules" true
    (a.Protocol.a_degraded = Some "load_shed:cheap-modules")

let test_engine_deadline_expired () =
  let eng = Lazy.force shared_engine in
  let b = Engine.find_bench eng bench_name |> Option.get in
  let w = Engine.worker eng in
  let q = { (first_query eng) with Protocol.wcross = false } in
  let expired = Unix.gettimeofday () -. 1.0 in
  let a = Engine.answer w ~degrade:Admission.Full ~deadline:(Some expired) b q in
  checkb "tagged deadline" true (a.Protocol.a_degraded = Some "deadline")

(* -- Daemon e2e ----------------------------------------------------- *)

let scratch_sock () =
  Filename.temp_file "scaf-test" ".sock" |> fun p ->
  Sys.remove p;
  p

let test_daemon_end_to_end () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg =
    { (Daemon.default_config ~socket_path:sock ()) with
      Daemon.benchmarks = [ b ] }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let c, benches = Client.connect ~name:"test" sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          checkb "hello lists the benchmark" true (benches = [ bench_name ]);
          Client.ping c;
          let qs = Client.queries c ~bench:bench_name in
          checkb "has hot loops" true (qs <> []);
          let loop, _, wqs = List.hd qs in
          let a = Client.ask c ~bench:bench_name
              { (List.hd wqs) with Protocol.wloop = loop } in
          checkb "answered undegraded" true (a.Protocol.a_degraded = None);
          (* stats must expose the daemon health counters *)
          let st = Client.stats c in
          let requests =
            Json.mem_or "metrics" ~default:Json.Null st
            |> Json.mem_or "counters" ~default:Json.Null
            |> Json.int_member "server.requests"
          in
          checkb "metrics count requests" true (requests > 0);
          checks "admission state" "accepting"
            (Json.mem_or "admission" ~default:Json.Null st
            |> Json.string_member "state")))

(* The incremental wire path: a client commits an edit to the daemon's
   resident program; the daemon invalidates, bumps the epoch, and keeps
   answering — no restart, no reload. *)
let test_daemon_edit_roundtrip () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg =
    { (Daemon.default_config ~socket_path:sock ()) with
      Daemon.benchmarks = [ b ] }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let c, _ = Client.connect ~name:"edit-test" sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let ask_all () =
            List.concat_map
              (fun (loop, _, wqs) ->
                List.map
                  (fun wq ->
                    Client.ask c ~bench:bench_name
                      { wq with Protocol.wloop = loop })
                  wqs)
              (Client.queries c ~bench:bench_name)
          in
          let before = ask_all () in
          checkb "workload answered" true (before <> []);
          let r = Client.edit c ~bench:bench_name [ Protocol.WAuto ] in
          checki "edit bumps the epoch" 1 r.Protocol.e_epoch;
          checkb "edit names a touched function" true
            (r.Protocol.e_touched_funcs <> []);
          checkb "invalidation retained entries" true (r.Protocol.e_retained > 0);
          checkb "invalidation evicted entries" true (r.Protocol.e_evicted > 0);
          let after = ask_all () in
          checki "same workload shape after edit" (List.length before)
            (List.length after);
          List.iter
            (fun (a : Protocol.answer) ->
              checkb "post-edit answers undegraded" true
                (a.Protocol.a_degraded = None))
            after;
          (* a second edit round-trips against the already-edited program *)
          let r2 = Client.edit c ~bench:bench_name [ Protocol.WAuto ] in
          checki "second edit reaches epoch 2" 2 r2.Protocol.e_epoch))

(* -- Journal: crash-durable submissions ----------------------------- *)

let scratch_dir () =
  let p = Filename.temp_file "scaf-journal" ".d" in
  Sys.remove p;
  p

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let sample_program () =
  let p = Scaf_suite.Registry.find "164.gzip" |> Option.get in
  {
    Protocol.wp_id = "user.gzip";
    wp_source = Scaf_suite.Program.source p;
    wp_train = Some (Scaf_suite.Program.train_inputs p);
    wp_ref = Some (Scaf_suite.Program.ref_input p);
  }

let test_journal_roundtrip () =
  let dir = scratch_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j, entries, rec0 = Journal.open_and_replay ~dir in
      checkb "fresh journal is empty" true (entries = []);
      checki "nothing replayed" 0 rec0.Journal.replayed;
      let sub = Journal.Submit (sample_program ()) in
      let ed =
        Journal.Edit { bench = "user.gzip"; edits = [ Protocol.WAuto ] }
      in
      Journal.append j sub;
      Journal.append j ed;
      checki "two entries live" 2 (Journal.entries j);
      Journal.close j;
      (* reopen: both entries come back, in order, structurally equal *)
      let j2, entries2, rec2 = Journal.open_and_replay ~dir in
      checki "recovered both" 2 rec2.Journal.replayed;
      checki "no torn tail" 0 rec2.Journal.truncated_bytes;
      checkb "entries survive byte-exactly" true (entries2 = [ sub; ed ]);
      Journal.close j2)

let test_journal_torn_tail () =
  let dir = scratch_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let j, _, _ = Journal.open_and_replay ~dir in
      let sub = Journal.Submit (sample_program ()) in
      Journal.append j sub;
      Journal.close j;
      let path = Filename.concat dir "submits.journal" in
      let whole = In_channel.with_open_bin path In_channel.input_all in
      (* a kill -9 mid-append leaves half a record: complete entry plus
         a torn prefix of the next *)
      Out_channel.with_open_gen
        [ Open_wronly; Open_append; Open_binary ]
        0o644 path
        (fun oc -> Out_channel.output_string oc "\x00\x00\x01\x00torn");
      let j2, entries2, rec2 = Journal.open_and_replay ~dir in
      checki "whole entry recovered" 1 rec2.Journal.replayed;
      checki "torn tail measured" 8 rec2.Journal.truncated_bytes;
      checkb "entry intact" true (entries2 = [ sub ]);
      (* the open truncated the file back to the last whole record and
         the journal keeps appending from there *)
      Journal.append j2 sub;
      Journal.close j2;
      let healed = In_channel.with_open_bin path In_channel.input_all in
      checki "file = two whole records" (2 * String.length whole)
        (String.length healed);
      (* a corrupted checksum also stops the scan at the damage *)
      Out_channel.with_open_gen
        [ Open_wronly; Open_binary ] 0o644 path
        (fun oc ->
          Out_channel.seek oc (Int64.of_int (String.length whole + 12));
          Out_channel.output_char oc '\xff');
      let j3, entries3, _ = Journal.open_and_replay ~dir in
      checkb "scan stops at the corrupt record" true (entries3 = [ sub ]);
      Journal.close j3)

(* -- Outbox: streaming backpressure --------------------------------- *)

let stub_answer =
  {
    Protocol.a_result = "ModRef";
    a_nodep = false;
    a_cost = 1.0;
    a_options = 1;
    a_unconditional = false;
    a_provenance = [];
    a_degraded = None;
    a_coalesced = false;
  }

let test_outbox_backpressure () =
  let ob = Daemon.outbox_create ~cap:2 ~grace:0.3 in
  (* under capacity: pushes return immediately *)
  (match Daemon.outbox_push ob (0, stub_answer) with
  | `Ok w -> checkb "first push immediate" true (w < 0.05)
  | _ -> Alcotest.fail "first push must succeed");
  (match Daemon.outbox_push ob (1, stub_answer) with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "second push must succeed");
  (* full + no consumer: the producer waits out the grace, then gives
     up — this is the slow-consumer shed-or-disconnect path *)
  let t0 = Unix.gettimeofday () in
  (match Daemon.outbox_push ob (2, stub_answer) with
  | `Overrun -> checkb "waited out the grace" true (Unix.gettimeofday () -. t0 >= 0.25)
  | _ -> Alcotest.fail "push into a dead-full outbox must overrun");
  (* a consumer draining unblocks the producer *)
  (match Daemon.outbox_take ob ~max_wait:0.1 with
  | `Item (0, _) -> ()
  | _ -> Alcotest.fail "take must pop in order");
  (match Daemon.outbox_push ob (2, stub_answer) with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "push after a drain must succeed");
  (* finish: the consumer drains the buffer, then sees Done *)
  Daemon.outbox_finish ob;
  (match Daemon.outbox_take ob ~max_wait:0.1 with
  | `Item (1, _) -> ()
  | _ -> Alcotest.fail "buffered items drain after finish");
  (match Daemon.outbox_take ob ~max_wait:0.1 with
  | `Item (2, _) -> ()
  | _ -> Alcotest.fail "buffered items drain after finish");
  (match Daemon.outbox_take ob ~max_wait:0.1 with
  | `Done -> ()
  | _ -> Alcotest.fail "empty finished outbox must report Done")

let test_outbox_cancel_stops_producer () =
  let ob = Daemon.outbox_create ~cap:1 ~grace:5.0 in
  (match Daemon.outbox_push ob (0, stub_answer) with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "first push must succeed");
  (* client cancels while the outbox is full: the producer must stop
     immediately instead of waiting out the (long) grace *)
  let t =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Daemon.outbox_cancel ob)
      ()
  in
  let t0 = Unix.gettimeofday () in
  (match Daemon.outbox_push ob (1, stub_answer) with
  | `Stopped -> checkb "stopped promptly, not after grace" true
      (Unix.gettimeofday () -. t0 < 1.0)
  | _ -> Alcotest.fail "push after cancel must stop");
  Thread.join t;
  (* an aborted stream surfaces its error to the consumer *)
  let ob2 = Daemon.outbox_create ~cap:1 ~grace:0.1 in
  Daemon.outbox_finish ~err:(Protocol.stream_overrun ~retry_after_ms:50.0) ob2;
  match Daemon.outbox_take ob2 ~max_wait:0.1 with
  | `Err e ->
      checks "overrun code" "stream_overrun" e.Protocol.code;
      checkb "overrun is retryable" true e.Protocol.retryable
  | _ -> Alcotest.fail "aborted outbox must surface the error"

(* -- Daemon: TCP transport, streaming, version gate, durability ----- *)

let daemon_cfg ?tcp ?state_dir ?(benchmarks = []) sock =
  let base = Daemon.default_config ~socket_path:sock () in
  { base with Daemon.benchmarks; tcp; state_dir }

let test_daemon_tcp_transport () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg = daemon_cfg ~tcp:"127.0.0.1:0" ~benchmarks:[ b ] sock in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let tcp_ep =
        match Daemon.tcp_endpoint d with
        | Some ep -> ep
        | None -> Alcotest.fail "daemon did not bind its TCP listener"
      in
      checkb "ephemeral port resolved" true
        (not (String.ends_with ~suffix:":0" tcp_ep));
      (* the same query over both transports must answer byte-identically *)
      let ask_over ep =
        let c, benches = Client.connect ~name:"transport-test" ep in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            checkb "hello lists the benchmark" true (benches = [ bench_name ]);
            let loop, _, wqs = List.hd (Client.queries c ~bench:bench_name) in
            Protocol.render_answer
              (Client.ask c ~bench:bench_name
                 { (List.hd wqs) with Protocol.wloop = loop }))
      in
      checks "tcp answer = unix answer" (ask_over sock) (ask_over tcp_ep))

let test_daemon_stream_identical () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let d = Daemon.start (daemon_cfg ~benchmarks:[ b ] sock) in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let c, _ = Client.connect ~name:"stream-test" sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let qs =
            List.concat_map
              (fun (loop, _, wqs) ->
                List.map (fun q -> { q with Protocol.wloop = loop }) wqs)
              (Client.queries c ~bench:bench_name)
          in
          checkb "workload nonempty" true (qs <> []);
          let batch = Client.ask_many c ~bench:bench_name qs in
          let streamed, summary = Client.ask_stream c ~bench:bench_name qs in
          checki "summary counts every answer" (List.length qs)
            summary.Protocol.st_count;
          checkb "not cancelled" false summary.Protocol.st_cancelled;
          List.iter2
            (fun (x : Protocol.answer) (y : Protocol.answer) ->
              checks "streamed = batched, byte for byte"
                (Protocol.render_answer x) (Protocol.render_answer y))
            batch streamed;
          (* the connection survives the stream: plain rpc still works *)
          Client.ping c;
          (* transport counters surface through ask stats *)
          let st = Client.stats c in
          let transport = Json.mem_or "transport" ~default:Json.Null st in
          checkb "stats counts streams" true
            (Json.int_member "streams_opened" transport >= 1);
          checkb "stats counts stream items" true
            (Json.int_member "stream_items" transport >= List.length qs)))

let test_daemon_version_gate () =
  let sock = scratch_sock () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let d = Daemon.start (daemon_cfg ~benchmarks:[ b ] sock) in
  Fun.protect
    ~finally:(fun () -> Daemon.stop d)
    (fun () ->
      let fd = Addr.connect (Addr.of_string sock) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let exchange payload =
            (match Wire.write_frame fd (Json.of_string payload) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "write: %s" (Wire.error_to_string e));
            match Wire.read_frame fd with
            | Ok j -> j
            | Error e -> Alcotest.failf "read: %s" (Wire.error_to_string e)
          in
          let expect_mismatch payload =
            match Protocol.open_envelope (exchange payload) with
            | Error e ->
                checks "code" "version_mismatch" e.Protocol.code;
                checkb "non-retryable" false e.Protocol.retryable
            | Ok _ -> Alcotest.failf "daemon accepted %s" payload
          in
          expect_mismatch {|{"v":99,"op":"ping"}|};
          expect_mismatch {|{"op":"ping"}|};
          (* the gate rejects the request, not the connection *)
          match Protocol.open_envelope (exchange {|{"v":2,"op":"ping"}|}) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "well-versioned ping rejected: %s"
              e.Protocol.msg))

let test_daemon_journal_recovery () =
  let sock = scratch_sock () in
  let dir = scratch_dir () in
  let b = Scaf_suite.Registry.find bench_name |> Option.get in
  let cfg = daemon_cfg ~state_dir:dir ~benchmarks:[ b ] sock in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* first life: submit a program, edit it, record its answers *)
      let ask_all c bench =
        List.concat_map
          (fun (loop, _, wqs) ->
            List.map
              (fun q ->
                Protocol.render_answer
                  (Client.ask c ~bench { q with Protocol.wloop = loop }))
              wqs)
          (Client.queries c ~bench)
      in
      let d1 = Daemon.start cfg in
      let before =
        Fun.protect
          ~finally:(fun () -> Daemon.stop d1)
          (fun () ->
            let c, _ = Client.connect ~name:"durability" sock in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let r = Client.submit c (sample_program ()) in
                checks "registered under its id" "user.gzip"
                  r.Protocol.s_id;
                ignore (Client.edit c ~bench:"user.gzip" [ Protocol.WAuto ]);
                ask_all c "user.gzip"))
      in
      checkb "submitted program answered" true (before <> []);
      (* second life: same state dir, no submit — the journal replays
         the submit and the edit through the admission pipeline *)
      let d2 = Daemon.start cfg in
      let after =
        Fun.protect
          ~finally:(fun () -> Daemon.stop d2)
          (fun () ->
            let c, benches = Client.connect ~name:"durability-2" sock in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                checkb "recovered program is listed" true
                  (List.mem "user.gzip" benches);
                ask_all c "user.gzip"))
      in
      checkb "recovered answers byte-identical" true (before = after))

(* -- the full chaos matrix ------------------------------------------ *)

let test_server_chaos_matrix () =
  let outcomes = Scaf_faultinject.Server_chaos.run_server_chaos ~seed:2026 () in
  checkb "at least 20 scenarios" true (List.length outcomes >= 20);
  List.iter
    (fun (o : Scaf_faultinject.Server_chaos.server_outcome) ->
      if not o.Scaf_faultinject.Server_chaos.s_ok then
        Alcotest.failf "server chaos %s: %s"
          o.Scaf_faultinject.Server_chaos.s_scenario
          o.Scaf_faultinject.Server_chaos.s_detail)
    outcomes

(* Both transports through the byte-level chaos proxy: slow-loris,
   truncated frames, RST, duplicated bytes, mid-stream client death,
   version skew. Every scenario must end answered/rejected/expired. *)
let test_net_chaos_matrix () =
  let outcomes = Scaf_faultinject.Net_chaos.run_net_chaos ~seed:2026 () in
  let over prefix =
    List.exists
      (fun (o : Scaf_faultinject.Server_chaos.server_outcome) ->
        String.starts_with ~prefix o.Scaf_faultinject.Server_chaos.s_scenario)
      outcomes
  in
  checkb "matrix covers the unix transport" true (over "net/unix/");
  checkb "matrix covers the tcp transport" true (over "net/tcp/");
  List.iter
    (fun name ->
      checkb (name ^ " present on both transports") true
        (over ("net/unix/" ^ name) && over ("net/tcp/" ^ name)))
    [ "proxied-slow-loris"; "truncate-mid-frame"; "client-vanishes" ];
  List.iter
    (fun (o : Scaf_faultinject.Server_chaos.server_outcome) ->
      if not o.Scaf_faultinject.Server_chaos.s_ok then
        Alcotest.failf "net chaos %s: %s"
          o.Scaf_faultinject.Server_chaos.s_scenario
          o.Scaf_faultinject.Server_chaos.s_detail)
    outcomes

let suite =
  [
    ( "server-json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "float bit-exact" `Quick test_json_float_bit_exact;
        Alcotest.test_case "malformed rejected" `Quick test_json_malformed;
      ] );
    ( "server-wire",
      [
        Alcotest.test_case "frame round-trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "truncated prefix" `Quick test_wire_truncated_prefix;
        Alcotest.test_case "truncated payload" `Quick
          test_wire_truncated_payload;
        Alcotest.test_case "oversized rejected from prefix" `Quick
          test_wire_oversized;
        Alcotest.test_case "bad json payload" `Quick test_wire_bad_json;
        Alcotest.test_case "closed peer" `Quick test_wire_closed;
      ] );
    ( "server-protocol",
      [
        Alcotest.test_case "request round-trips" `Quick
          test_protocol_request_roundtrip;
        Alcotest.test_case "unknown op rejected" `Quick
          test_protocol_unknown_op;
        Alcotest.test_case "answer round-trips" `Quick
          test_protocol_answer_roundtrip;
        Alcotest.test_case "error envelope" `Quick test_protocol_err_envelope;
        Alcotest.test_case "version envelope + mismatch" `Quick
          test_protocol_version_envelope;
        Alcotest.test_case "stream frames" `Quick test_protocol_stream_frames;
      ] );
    ( "server-journal",
      [
        Alcotest.test_case "append/replay round-trip" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "torn tail truncated, then heals" `Quick
          test_journal_torn_tail;
      ] );
    ( "server-outbox",
      [
        Alcotest.test_case "backpressure: wait, overrun, drain" `Quick
          test_outbox_backpressure;
        Alcotest.test_case "cancel stops the producer" `Quick
          test_outbox_cancel_stops_producer;
      ] );
    ( "server-admission",
      [
        Alcotest.test_case "watermark state machine" `Quick
          test_admission_watermarks;
        Alcotest.test_case "close drains then refuses" `Quick
          test_admission_close_drains;
        Alcotest.test_case "pop blocks until submit" `Quick
          test_admission_pop_blocks_until_submit;
      ] );
    ( "server-engine",
      [
        Alcotest.test_case "concurrent hammering coalesces" `Quick
          test_engine_coalescing;
        Alcotest.test_case "cached-only shedding" `Quick
          test_engine_shed_cached_only;
        Alcotest.test_case "cheap-modules shedding" `Quick
          test_engine_shed_cheap;
        Alcotest.test_case "expired deadline degrades" `Quick
          test_engine_deadline_expired;
      ] );
    ( "server-daemon",
      [
        Alcotest.test_case "end-to-end round-trip" `Quick
          test_daemon_end_to_end;
        Alcotest.test_case "edit round-trips without restart" `Quick
          test_daemon_edit_roundtrip;
        Alcotest.test_case "tcp transport answers byte-identically" `Quick
          test_daemon_tcp_transport;
        Alcotest.test_case "streamed ask_many = batched ask_many" `Quick
          test_daemon_stream_identical;
        Alcotest.test_case "version gate rejects skewed clients" `Quick
          test_daemon_version_gate;
        Alcotest.test_case "journal recovers submissions on restart" `Slow
          test_daemon_journal_recovery;
        Alcotest.test_case "chaos matrix all green" `Slow
          test_server_chaos_matrix;
        Alcotest.test_case "network chaos matrix all green" `Slow
          test_net_chaos_matrix;
      ] );
  ]
