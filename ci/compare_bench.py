#!/usr/bin/env python3
"""Compare a fresh bench --json run against a committed BENCH_*.json baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [TOLERANCE]

Ratios are machine-normalized before gating: the median current/baseline
ratio across all shared benchmarks is taken as the machine-speed factor
(CI runners are rarely the machine that produced the committed baseline),
and each benchmark is judged on its deviation from that factor. A
benchmark regresses when its normalized ratio exceeds TOLERANCE (default
1.10, i.e. +-10%); improvements beyond 1/TOLERANCE are reported as
advisory "update the baseline" notes but do not fail. Missing benchmarks
in CURRENT are errors (a silently dropped benchmark is how perf coverage
rots); new benchmarks in CURRENT are reported but fine. Exits non-zero
on any regression or missing benchmark.
"""

import json
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
    return doc["benchmarks"]


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 1.10

    shared = [n for n in baseline if n in current and baseline[n] > 0]
    if not shared:
        sys.exit("no shared benchmarks between baseline and current run")
    machine = statistics.median(current[n] / baseline[n] for n in shared)
    print(f"machine-speed factor (median ratio): {machine:.3f}x\n")

    failures = []
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"MISSING  {name}: in baseline but not measured")
            continue
        base, cur = baseline[name], current[name]
        ratio = (cur / base / machine) if base > 0 else float("inf")
        if ratio > tolerance:
            status = "REGRESSED"
        elif ratio < 1.0 / tolerance:
            status = "improved"
        else:
            status = "ok"
        print(f"{status:9s} {name:40s} {base:12.1f} -> {cur:12.1f} ns/run"
              f"  ({ratio:5.2f}x normalized)")
        if ratio > tolerance:
            failures.append(f"{name}: {ratio:.2f}x over baseline after "
                            f"normalization (limit {tolerance:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"new       {name:40s} {'':12s}    {current[name]:12.1f} ns/run")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(baseline)} baseline benchmarks within "
          f"{tolerance:.2f}x (normalized)")


if __name__ == "__main__":
    main()
