#!/usr/bin/env python3
"""Compare a fresh bench --json run against a committed BENCH_*.json baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [TOLERANCE]
                        [--require-speedup SLOW:FAST:MIN]...

Ratios are machine-normalized before gating: the median current/baseline
ratio across all shared benchmarks is taken as the machine-speed factor
(CI runners are rarely the machine that produced the committed baseline),
and each benchmark is judged on its deviation from that factor. A
benchmark regresses when its normalized ratio exceeds TOLERANCE (default
1.10, i.e. +-10%); improvements beyond 1/TOLERANCE are reported as
advisory "update the baseline" notes but do not fail. Missing benchmarks
in CURRENT are errors (a silently dropped benchmark is how perf coverage
rots); new benchmarks in CURRENT are reported but fine. Exits non-zero
on any regression or missing benchmark.

--require-speedup SLOW:FAST:MIN (repeatable) additionally asserts a
scaling relation *within* the CURRENT run: benchmark SLOW must take at
least MIN times as long per run as benchmark FAST. Being a same-run
ratio it needs no machine normalization — it is how CI pins down "the
4-job sweep is at least 2x faster than the 1-job sweep" without caring
how fast the runner is. Only meaningful on runners with enough cores;
gate the flag on nproc in the workflow, not here.
"""

import json
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
    return doc["benchmarks"]


def parse_args(argv):
    positional, speedups = [], []
    i = 0
    while i < len(argv):
        if argv[i] == "--require-speedup":
            if i + 1 >= len(argv):
                sys.exit("--require-speedup needs a SLOW:FAST:MIN operand")
            # SLOW:FAST:MIN — benchmark names never contain ':'
            slow, sep, rest = argv[i + 1].partition(":")
            fast, sep2, minimum = rest.partition(":")
            if not (sep and sep2 and slow and fast and minimum):
                sys.exit(f"malformed --require-speedup {argv[i + 1]!r}")
            speedups.append((slow, fast, float(minimum)))
            i += 2
        else:
            positional.append(argv[i])
            i += 1
    if len(positional) not in (2, 3):
        sys.exit(__doc__)
    tolerance = float(positional[2]) if len(positional) == 3 else 1.10
    return positional[0], positional[1], tolerance, speedups


def main():
    base_path, cur_path, tolerance, speedups = parse_args(sys.argv[1:])
    baseline = load(base_path)
    current = load(cur_path)

    shared = [n for n in baseline if n in current and baseline[n] > 0]
    if not shared:
        sys.exit("no shared benchmarks between baseline and current run")
    machine = statistics.median(current[n] / baseline[n] for n in shared)
    print(f"machine-speed factor (median ratio): {machine:.3f}x\n")

    failures = []
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"MISSING  {name}: in baseline but not measured")
            continue
        base, cur = baseline[name], current[name]
        ratio = (cur / base / machine) if base > 0 else float("inf")
        if ratio > tolerance:
            status = "REGRESSED"
        elif ratio < 1.0 / tolerance:
            status = "improved"
        else:
            status = "ok"
        print(f"{status:9s} {name:40s} {base:12.1f} -> {cur:12.1f} ns/run"
              f"  ({ratio:5.2f}x normalized)")
        if ratio > tolerance:
            failures.append(f"{name}: {ratio:.2f}x over baseline after "
                            f"normalization (limit {tolerance:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"new       {name:40s} {'':12s}    {current[name]:12.1f} ns/run")

    for slow, fast, minimum in speedups:
        missing = [n for n in (slow, fast) if n not in current]
        if missing:
            failures.append(
                f"speedup {slow} vs {fast}: not measured: {', '.join(missing)}")
            continue
        if current[fast] <= 0:
            failures.append(f"speedup {slow} vs {fast}: non-positive estimate")
            continue
        actual = current[slow] / current[fast]
        verdict = "ok" if actual >= minimum else "TOO SLOW"
        print(f"\nspeedup   {slow} / {fast}: {actual:.2f}x "
              f"(need >= {minimum:.2f}x) {verdict}")
        if actual < minimum:
            failures.append(f"{fast}: only {actual:.2f}x faster than {slow} "
                            f"(need >= {minimum:.2f}x)")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(baseline)} baseline benchmarks within "
          f"{tolerance:.2f}x (normalized)"
          + (f"; {len(speedups)} speedup relation(s) hold" if speedups else ""))


if __name__ == "__main__":
    main()
