#!/usr/bin/env python3
"""Validate a JSON document against a minimal JSON-Schema subset.

Supports: type (object/array/string/number/integer/boolean), properties,
required, items, enum, minItems — enough for ci/trace_schema.json, with no
third-party dependencies.

Usage: validate_trace.py SCHEMA.json DOC.json
"""
import json
import sys


def fail(path, msg):
    sys.exit(f"schema violation at {path}: {msg}")


TYPES = {
    "object": lambda d: isinstance(d, dict),
    "array": lambda d: isinstance(d, list),
    "string": lambda d: isinstance(d, str),
    "number": lambda d: isinstance(d, (int, float)) and not isinstance(d, bool),
    "integer": lambda d: isinstance(d, int) and not isinstance(d, bool),
    "boolean": lambda d: isinstance(d, bool),
}


def check(doc, schema, path="$"):
    t = schema.get("type")
    if t and not TYPES[t](doc):
        fail(path, f"expected {t}, got {type(doc).__name__}")
    if "enum" in schema and doc not in schema["enum"]:
        fail(path, f"{doc!r} not in {schema['enum']}")
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                fail(path, f"missing required property {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                check(doc[key], sub, f"{path}.{key}")
    if isinstance(doc, list):
        if len(doc) < schema.get("minItems", 0):
            fail(path, f"fewer than {schema['minItems']} items")
        items = schema.get("items")
        if items is not None:
            for i, el in enumerate(doc):
                check(el, items, f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        sys.exit("usage: validate_trace.py SCHEMA.json DOC.json")
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        doc = json.load(f)
    check(doc, schema)
    n = len(doc.get("traceEvents", [])) if isinstance(doc, dict) else 0
    print(f"trace OK: {n} events validated against {sys.argv[1]}")


if __name__ == "__main__":
    main()
